//! Criterion benchmarks for the Schedule Builder and the static memory
//! planner — the offline analysis cost of Gist (it runs once per training
//! job, so it only needs to be "fast enough", but we track it anyway).

use criterion::{criterion_group, criterion_main, Criterion};
use gist_core::{Gist, GistConfig, ScheduleBuilder};
use gist_memory::{plan_static, SharingPolicy};
use std::hint::black_box;

fn bench_schedule_builder(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_builder");
    g.sample_size(20);
    let vgg = gist_models::vgg16(64);
    g.bench_function("vgg16_lossless", |b| {
        b.iter(|| ScheduleBuilder::new(GistConfig::lossless()).build(black_box(&vgg)).unwrap())
    });
    let inception = gist_models::inception(64);
    g.bench_function("inception_lossless", |b| {
        b.iter(|| {
            ScheduleBuilder::new(GistConfig::lossless()).build(black_box(&inception)).unwrap()
        })
    });
    g.finish();
}

fn bench_static_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_planner");
    g.sample_size(20);
    let vgg = gist_models::vgg16(64);
    let t = ScheduleBuilder::new(GistConfig::lossless()).build(&vgg).unwrap();
    g.bench_function("vgg16_inventory", |b| {
        b.iter(|| plan_static(black_box(&t.inventory), SharingPolicy::Full))
    });
    let deep = gist_models::resnet_cifar(50, 32); // 302 layers
    let td = ScheduleBuilder::new(GistConfig::lossless()).build(&deep).unwrap();
    g.bench_function("resnet302_inventory", |b| {
        b.iter(|| plan_static(black_box(&td.inventory), SharingPolicy::Full))
    });
    g.finish();
}

fn bench_end_to_end_plan(c: &mut Criterion) {
    let mut g = c.benchmark_group("gist_plan");
    g.sample_size(10);
    let net = gist_models::alexnet(64);
    g.bench_function("alexnet_lossy_plan", |b| {
        b.iter(|| {
            Gist::new(GistConfig::lossy(gist_encodings::DprFormat::Fp8))
                .plan(black_box(&net))
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_schedule_builder, bench_static_planner, bench_end_to_end_plan);
criterion_main!(benches);
