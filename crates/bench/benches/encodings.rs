//! Criterion microbenchmarks for the Gist encoding kernels.
//!
//! These are the measured counterpart to the analytic overhead model of
//! Figure 9/11: encode and decode are streaming passes, and the Binarize
//! ReLU backward touches ~3.7x fewer bytes than its FP32 counterpart.
//! Also includes the CSR-vs-bitmap ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gist_encodings::csr::SsdcConfig;
use gist_encodings::dpr::DprBuffer;
use gist_encodings::{BitMask, CsrMatrix, DprFormat};
use std::hint::black_box;

const N: usize = 1 << 20; // 1M elements = 4 MB FP32

fn relu_output(sparsity_mod: usize) -> Vec<f32> {
    (0..N)
        .map(|i| if i % sparsity_mod == 0 { (i % 97) as f32 * 0.1 + 0.1 } else { 0.0 })
        .collect()
}

fn bench_binarize(c: &mut Criterion) {
    let mut g = c.benchmark_group("binarize");
    g.throughput(Throughput::Bytes((N * 4) as u64));
    let y = relu_output(3);
    let dy: Vec<f32> = (0..N).map(|i| i as f32 * 0.001).collect();
    g.bench_function("encode", |b| b.iter(|| BitMask::encode(black_box(&y))));
    let mask = BitMask::encode(&y);
    g.bench_function("relu_backward_mask", |b| {
        b.iter(|| mask.relu_backward(black_box(&dy)).unwrap())
    });
    let yt = gist_tensor::Tensor::from_vec(gist_tensor::Shape::vector(N), y.clone()).unwrap();
    let dyt = gist_tensor::Tensor::from_vec(gist_tensor::Shape::vector(N), dy).unwrap();
    g.bench_function("relu_backward_fp32", |b| {
        b.iter(|| gist_tensor::ops::relu::backward(black_box(&yt), black_box(&dyt)))
    });
    g.finish();
}

fn bench_ssdc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ssdc");
    g.throughput(Throughput::Bytes((N * 4) as u64));
    for (label, m) in [("sparsity50", 2usize), ("sparsity80", 5), ("sparsity95", 20)] {
        let y = relu_output(m);
        g.bench_function(format!("encode_narrow_{label}"), |b| {
            b.iter(|| CsrMatrix::encode(black_box(&y), SsdcConfig::default()))
        });
        let csr = CsrMatrix::encode(&y, SsdcConfig::default());
        g.bench_function(format!("decode_narrow_{label}"), |b| b.iter(|| csr.decode()));
    }
    // Ablation: narrow (1-byte) vs wide (4-byte cuSPARSE-style) indices.
    let y = relu_output(5);
    g.bench_function("encode_wide_sparsity80", |b| {
        b.iter(|| CsrMatrix::encode(black_box(&y), SsdcConfig { narrow: false, value_format: None }))
    });
    g.finish();
}

fn bench_dpr(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpr");
    g.throughput(Throughput::Bytes((N * 4) as u64));
    let y: Vec<f32> = (0..N).map(|i| (i as f32 - N as f32 / 2.0) * 1e-3).collect();
    for f in [DprFormat::Fp16, DprFormat::Fp10, DprFormat::Fp8] {
        g.bench_function(format!("encode_{}", f.label()), |b| {
            b.iter(|| DprBuffer::encode(f, black_box(&y)))
        });
        let buf = DprBuffer::encode(f, &y);
        g.bench_function(format!("decode_{}", f.label()), |b| b.iter(|| buf.decode()));
    }
    g.finish();
}

fn bench_maxpool_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("poolmap");
    let argmax: Vec<u8> = (0..N / 4).map(|i| (i % 9) as u8).collect();
    g.bench_function("encode_4bit", |b| {
        b.iter_batched(
            || argmax.clone(),
            |a| gist_encodings::PoolIndexMap::encode(&a, 3).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_binarize, bench_ssdc, bench_dpr, bench_maxpool_map);
criterion_main!(benches);
