//! The paper's sparse-format bake-off (Section IV-A): CSR vs ELL vs Hybrid
//! (plus a bitmap format as an extra ablation point). The paper picked CSR
//! for "lowest format-conversion latency"; this bench measures exactly
//! that — encode and decode latency per format at ReLU-typical sparsity —
//! and prints the encoded sizes alongside.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gist_encodings::csr::SsdcConfig;
use gist_encodings::{BitmapMatrix, CsrMatrix, EllMatrix, HybMatrix};
use std::hint::black_box;

const N: usize = 1 << 20;

fn relu_like(sparsity_mod: usize) -> Vec<f32> {
    // Mildly irregular row densities, like real ReLU outputs.
    (0..N)
        .map(|i| {
            let burst = (i / 256) % 7 == 0;
            if i % sparsity_mod == 0 || (burst && i % 3 == 0) {
                (i % 89) as f32 * 0.1 + 0.1
            } else {
                0.0
            }
        })
        .collect()
}

fn bench_conversion_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_format_conversion");
    g.throughput(Throughput::Bytes((N * 4) as u64));
    let data = relu_like(5);

    // Print the size comparison once, outside the timing loops.
    let csr = CsrMatrix::encode(&data, SsdcConfig::default());
    let ell = EllMatrix::encode(&data);
    let hyb = HybMatrix::encode(&data);
    let bmp = BitmapMatrix::encode(&data);
    eprintln!(
        "encoded sizes @ {:.1}% sparsity: dense {} | csr {} | ell {} | hyb {} | bitmap {}",
        100.0 * data.iter().filter(|&&v| v == 0.0).count() as f64 / N as f64,
        N * 4,
        csr.encoded_bytes(),
        ell.encoded_bytes(),
        hyb.encoded_bytes(),
        bmp.encoded_bytes()
    );

    g.bench_function("csr_encode", |b| {
        b.iter(|| CsrMatrix::encode(black_box(&data), SsdcConfig::default()))
    });
    g.bench_function("ell_encode", |b| b.iter(|| EllMatrix::encode(black_box(&data))));
    g.bench_function("hyb_encode", |b| b.iter(|| HybMatrix::encode(black_box(&data))));
    g.bench_function("bitmap_encode", |b| b.iter(|| BitmapMatrix::encode(black_box(&data))));

    g.bench_function("csr_decode", |b| b.iter(|| csr.decode()));
    g.bench_function("ell_decode", |b| b.iter(|| ell.decode()));
    g.bench_function("hyb_decode", |b| b.iter(|| hyb.decode()));
    g.bench_function("bitmap_decode", |b| b.iter(|| bmp.decode()));
    g.finish();
}

criterion_group!(benches, bench_conversion_latency);
criterion_main!(benches);
