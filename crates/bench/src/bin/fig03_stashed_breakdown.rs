//! Figure 3: breakdown of the stashed feature maps by layer-pair category
//! (ReLU-Pool / ReLU-Conv / Others).
//!
//! Paper's claim to check: ReLU outputs form the major fraction of stashed
//! feature maps — for VGG16, 40% ReLU-Pool + 49% ReLU-Conv = 89%.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::plan::stash_breakdown;

fn main() {
    banner("Figure 3", "stashed-feature-map breakdown by encoding-eligible category");
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>9} {:>8}",
        "model", "ReLU-Pool", "ReLU-Conv", "Others", "total", "ReLU%"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let b = stash_breakdown(&graph).expect("paper models infer shapes");
        println!(
            "{:<10} {:>9.2}G {:>9.2}G {:>9.2}G {:>7.2}G {:>7.1}%",
            graph.name(),
            gb(b.relu_pool),
            gb(b.relu_conv),
            gb(b.other),
            gb(b.total()),
            100.0 * b.relu_fraction()
        );
    }
    println!();
    println!("paper: VGG16 is 40% ReLU-Pool / 49% ReLU-Conv (89% ReLU outputs total).");
}
