//! Benchmark for full training steps under each stash mode — the measured
//! CPU analogue of Figure 9 (Gist's overhead on real forward+backward
//! execution) — plus two allocator-level guarantees checked with a counting
//! global allocator and recorded in the bench JSON meta:
//!
//! 1. a disabled recorder must add zero heap allocations to the hot path;
//! 2. `AllocPolicy::Arena` must cut steady-state allocations per step well
//!    below the heap policy (feature maps, stash copies, gradient maps and
//!    decode buffers all resolve into the pre-planned slab; what remains is
//!    kernel-internal scratch and encoded-container payloads).
//!
//! Run with `cargo run --release -p gist-bench --bin bench_training_step`.
//! `GIST_PLAN=wave` re-captures the arena group under the wave-granular
//! plan (and `GIST_THREADS=n` under a pinned pool size); overridden runs
//! write suffixed artifacts (`bench_training_step_arena_wave_t2.json`).

use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_obs::NullRecorder;
use gist_runtime::{
    AllocPolicy, ExecMode, Executor, OffloadMode, PlanGranularity, SyntheticImages,
};
use gist_testkit::BenchGroup;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper that counts allocation calls.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_calls(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

fn main() {
    // `GIST_PLAN=event|wave` selects the arena plan granularity, and an
    // explicit `GIST_THREADS` pins the pool size; either override suffixes
    // the arena artifact (`bench_training_step_arena_wave_t2.json`, …) so
    // the paired captures coexist under `results/` without clobbering the
    // default-configuration JSON.
    let plan = std::env::var("GIST_PLAN")
        .ok()
        .map(|v| PlanGranularity::parse(&v).expect("GIST_PLAN must be event or wave"))
        .unwrap_or(PlanGranularity::Event);
    let mut suffix = String::new();
    if plan == PlanGranularity::Wave {
        suffix.push_str("_wave");
    }
    if let Ok(t) = std::env::var("GIST_THREADS") {
        suffix.push_str(&format!("_t{t}"));
    }
    let batch = 8;
    let mut ds = SyntheticImages::new(4, 16, 0.3, 42);
    let (x, y) = ds.minibatch(batch);

    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline_fp32", ExecMode::Baseline),
        ("gist_lossless", ExecMode::Gist(GistConfig::lossless())),
        ("gist_lossy_fp8", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp8))),
    ];

    // The heap-policy group and the tracing-overhead gate only run in the
    // default configuration; suffixed runs capture the arena group alone.
    if suffix.is_empty() {
        let mut g = BenchGroup::new("training_step").samples(20);
        g.meta("threads", gist_par::current_threads() as u64);
        g.meta("simd", gist_simd::level() as u64);
        g.meta("replicas", 1);
        g.meta("grad_codec", gist_dist::GradCodec::None.meta_id());

        // Tracing-off overhead: one identically-seeded executor per entry
        // point, one step each — deterministic execution means identical
        // allocation counts unless the traced path allocates where the
        // plain path does not.
        let fresh =
            || Executor::new(gist_models::small_vgg(batch, 4), ExecMode::Baseline, 7).unwrap();
        // Warm kernel-internal thread-local scratch (the gist-simd matmul
        // pack buffers grow once per thread and persist) so neither counted
        // step pays one-time growth the other doesn't.
        let mut warm = fresh();
        warm.step(&x, &y, 0.01).unwrap();
        drop(warm);
        let mut plain = fresh();
        let mut traced = fresh();
        let plain_allocs = alloc_calls(|| {
            plain.step(&x, &y, 0.01).unwrap();
        });
        let traced_allocs = alloc_calls(|| {
            traced.step_traced(&x, &y, 0.01, &NullRecorder).unwrap();
        });
        let delta = traced_allocs.abs_diff(plain_allocs);
        assert_eq!(
            delta, 0,
            "disabled tracing must not allocate: step {plain_allocs} vs step_traced {traced_allocs}"
        );
        g.meta("trace", 0);
        g.meta("trace_noop_extra_allocs", delta);

        for (label, mode) in &modes {
            let mut exec =
                Executor::new(gist_models::small_vgg(batch, 4), mode.clone(), 7).expect("executor");
            g.bench(label, || exec.step(&x, &y, 0.01).unwrap());
        }
        g.finish();
    }

    // Arena-policy twin of the group above, plus steady-state allocation
    // counts per step for both policies. The first arena step still touches
    // the heap (encoded-container payloads grow to steady state); counts
    // are taken after a warmup step so they reflect the per-step regime.
    let mut g = BenchGroup::new(&format!("training_step_arena{suffix}")).samples(20);
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.meta("replicas", 1);
    g.meta("grad_codec", gist_dist::GradCodec::None.meta_id());
    g.meta("plan", if plan == PlanGranularity::Wave { 1 } else { 0 });
    for (label, mode) in &modes {
        let step_allocs = |policy: AllocPolicy| {
            let mut exec = Executor::new_with_granularity(
                gist_models::small_vgg(batch, 4),
                mode.clone(),
                7,
                policy,
                OffloadMode::None,
                plan,
            )
            .expect("executor");
            exec.step(&x, &y, 0.01).unwrap();
            let (leases0, misses0) = exec.scratch_counters();
            let allocs = alloc_calls(|| {
                exec.step(&x, &y, 0.01).unwrap();
            });
            let (leases1, misses1) = exec.scratch_counters();
            (allocs, leases1 - leases0, misses1 - misses0, exec.arena_capacity_bytes())
        };
        let (heap_allocs, leases, misses, _) = step_allocs(AllocPolicy::Heap);
        let (arena_allocs, _, _, slab) = step_allocs(AllocPolicy::Arena);
        assert!(
            arena_allocs < heap_allocs,
            "{label}: arena steady state must allocate less than heap \
             ({arena_allocs} vs {heap_allocs})"
        );
        // Direct gradient-merge regions (backward kernels land dx
        // contributions in planned slab side regions) must keep the arena
        // steady state strictly below the pre-merge heap count of 152
        // measured on this same small-VGG configuration.
        assert!(
            arena_allocs < 152,
            "{label}: arena steady state regressed past the pre-gradient-merge \
             count ({arena_allocs} >= 152)"
        );
        // The backward scratch pool should absorb the vast majority of
        // post-warmup leases (misses are interleaving-dependent: a LIFO pop
        // can hand a task a buffer smaller than its lease).
        assert!(
            misses <= leases / 2,
            "{label}: scratch pool missed {misses}/{leases} leases post-warmup"
        );
        g.meta(&format!("{label}_heap_allocs_per_step"), heap_allocs);
        g.meta(&format!("{label}_arena_allocs_per_step"), arena_allocs);
        g.meta(&format!("{label}_scratch_leases_per_step"), leases);
        g.meta(&format!("{label}_scratch_absorbed_per_step"), leases - misses);
        g.meta(&format!("{label}_arena_slab_bytes"), slab.expect("arena slab") as u64);

        let mut exec = Executor::new_with_granularity(
            gist_models::small_vgg(batch, 4),
            mode.clone(),
            7,
            AllocPolicy::Arena,
            OffloadMode::None,
            plan,
        )
        .expect("executor");
        g.bench(label, || exec.step(&x, &y, 0.01).unwrap());
    }
    g.meta("alloc_policy", 1);
    g.finish();
}
