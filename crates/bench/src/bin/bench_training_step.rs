//! Benchmark for full training steps under each stash mode — the measured
//! CPU analogue of Figure 9 (Gist's overhead on real forward+backward
//! execution).
//!
//! Run with `cargo run --release -p gist-bench --bin bench_training_step`.

use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_runtime::{ExecMode, Executor, SyntheticImages};
use gist_testkit::BenchGroup;

fn main() {
    let mut g = BenchGroup::new("training_step").samples(20);
    g.meta("threads", gist_par::current_threads() as u64);
    let batch = 8;
    let mut ds = SyntheticImages::new(4, 16, 0.3, 42);
    let (x, y) = ds.minibatch(batch);
    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline_fp32", ExecMode::Baseline),
        ("gist_lossless", ExecMode::Gist(GistConfig::lossless())),
        ("gist_lossy_fp8", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp8))),
    ];
    for (label, mode) in modes {
        let mut exec = Executor::new(gist_models::small_vgg(batch, 4), mode, 7).expect("executor");
        g.bench(label, || exec.step(&x, &y, 0.01).unwrap());
    }
    g.finish();
}
