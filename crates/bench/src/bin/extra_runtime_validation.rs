//! Extension study: cross-validate the static planner against the live
//! executor. The executor frees each FP32 feature map right after its last
//! forward use and holds only encoded stashes across the temporal gap —
//! its measured peak footprint should track the planner's dynamic estimate
//! and shrink under each Gist configuration.

use gist_bench::banner;
use gist_core::{Gist, GistConfig};
use gist_encodings::DprFormat;
use gist_runtime::{ExecMode, Executor, SyntheticImages};

fn main() {
    banner("Extra", "runtime-measured peak footprint vs planner (small nets)");
    let batch = 16;
    let nets: Vec<(&str, gist_graph::Graph)> = vec![
        ("TinyConvNet", gist_models::tiny_convnet(batch, 4)),
        ("SmallVGG", gist_models::small_vgg(batch, 4)),
        ("TinyClassic", gist_models::tiny_classic(batch, 4)),
    ];
    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline", ExecMode::Baseline),
        ("lossless", ExecMode::Gist(GistConfig::lossless())),
        ("lossy-fp8", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp8))),
    ];
    println!(
        "{:<14} {:<10} {:>12} {:>12} {:>12}",
        "net", "mode", "peak(KB)", "stash(KB)", "plan-dyn(KB)"
    );
    for (name, graph) in nets {
        let mut ds = SyntheticImages::new(4, 16, 0.4, 3);
        let (x, y) = ds.minibatch(batch);
        for (mode_name, mode) in &modes {
            let mut exec = Executor::new(graph.clone(), mode.clone(), 7).expect("executor");
            let stats = exec.step(&x, &y, 0.05).expect("step");
            let config = match mode {
                ExecMode::Baseline => GistConfig::baseline(),
                ExecMode::Gist(c) => *c,
                ExecMode::UniformImmediate(_) => GistConfig::baseline(),
            };
            let plan = Gist::new(config.with_dynamic_allocation()).plan(&graph).expect("plan");
            println!(
                "{:<14} {:<10} {:>11.1} {:>11.1} {:>11.1}",
                name,
                mode_name,
                stats.peak_live_bytes as f64 / 1024.0,
                stats.stash_bytes as f64 / 1024.0,
                plan.optimized_bytes as f64 / 1024.0
            );
        }
        println!();
    }
    println!("the live executor's peak tracks the planner's dynamic estimate and");
    println!("drops under each Gist configuration — the planner is not just paper math.");
}
