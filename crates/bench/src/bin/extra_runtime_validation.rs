//! The memory oracle gate: cross-check the live executor, the runtime
//! memory accountant, and the static predictor against each other, and fail
//! (exit 1) on any disagreement. Run by `scripts/verify.sh`.
//!
//! For every small net x stash mode x thread count this checks that:
//!
//! 1. the traced memory-event stream folds cleanly (no double allocs,
//!    mismatched frees, or reuse collisions);
//! 2. the accountant's observed peak equals the executor's own meter
//!    (`StepStats::peak_live_bytes`) exactly;
//! 3. the statically predicted event stream (`gist_runtime::predict`)
//!    matches the observed memory substream event-for-event;
//! 4. `gist-memory`'s dynamic-allocation simulator over the observed buffer
//!    lifetimes reproduces the accountant's peak, and its offset packer
//!    finds a layout in which no two concurrently-live buffers overlap;
//! 5. the memory substream is byte-identical at every thread count (the
//!    spans carry wall-clock time; the memory discipline must not);
//! 6. under `AllocPolicy::Arena` the step executes out of the pre-planned
//!    slab: the observed stream equals the fully static arena prediction,
//!    every buffer life fits its planned region with no concurrent
//!    overlap (`verify_offsets`), the observed peak fits the slab whose
//!    capacity equals the planned bytes, and the loss is bit-identical to
//!    the heap run.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_memory::{check_no_overlap, observed_peak};
use gist_obs::{Event, MemoryAccountant, TraceSink};
use gist_runtime::{
    predict_step_events, predict_step_events_for, ssdc_stash_sizes, AllocPolicy, ExecMode,
    Executor, SyntheticImages,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn zoo_graph(net: &str) -> gist_graph::Graph {
    let batch = 16;
    match net {
        "TinyConvNet" => gist_models::tiny_convnet(batch, 4),
        "SmallVGG" => gist_models::small_vgg(batch, 4),
        "TinyClassic" => gist_models::tiny_classic(batch, 4),
        _ => unreachable!("unknown net"),
    }
}

fn traced_step(
    net: &str,
    mode: &ExecMode,
    threads: usize,
    policy: AllocPolicy,
) -> (Executor, Vec<Event>, gist_runtime::StepStats) {
    gist_par::with_threads(threads, || {
        let batch = 16;
        let graph = zoo_graph(net);
        let mut ds = SyntheticImages::new(4, 16, 0.4, 3);
        let (x, y) = ds.minibatch(batch);
        let mut exec = Executor::new_with_policy(graph, mode.clone(), 7, policy).expect("executor");
        let sink = TraceSink::new();
        let stats = exec.step_traced(&x, &y, 0.05, &sink).expect("step");
        let events: Vec<Event> = sink
            .take()
            .into_iter()
            .filter(|e| e.is_memory() || matches!(e, Event::Encode { .. }))
            .collect();
        (exec, events, stats)
    })
}

fn memory_substream(net: &str, mode: &ExecMode, threads: usize) -> (Vec<Event>, usize) {
    let (_, events, stats) = traced_step(net, mode, threads, AllocPolicy::Heap);
    (events, stats.peak_live_bytes)
}

fn check(net: &str, mode_name: &str, mode: &ExecMode) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{net}/{mode_name}: {msg}"));
    let graph = match net {
        "TinyConvNet" => gist_models::tiny_convnet(16, 4),
        "SmallVGG" => gist_models::small_vgg(16, 4),
        "TinyClassic" => gist_models::tiny_classic(16, 4),
        _ => unreachable!("unknown net"),
    };
    let (events, meter_peak) = memory_substream(net, mode, 1);

    // (1) the stream folds cleanly.
    let mut acc = MemoryAccountant::new();
    if let Err(e) = acc.fold_all(&events) {
        return fail(format!("malformed memory stream: {e}"));
    }

    // (2) accountant peak == executor meter peak.
    if acc.peak_bytes() != meter_peak as u64 {
        return fail(format!(
            "accountant peak {} != executor meter peak {}",
            acc.peak_bytes(),
            meter_peak
        ));
    }

    // (3) predicted stream == observed memory substream, event for event.
    let ssdc = ssdc_stash_sizes(&events);
    let predicted = match predict_step_events(&graph, mode, &ssdc) {
        Ok(p) => p,
        Err(e) => return fail(format!("predictor failed: {e}")),
    };
    let observed: Vec<&Event> = events.iter().filter(|e| e.is_memory()).collect();
    if observed.len() != predicted.len() || observed.iter().zip(&predicted).any(|(a, b)| **a != *b)
    {
        let first = observed
            .iter()
            .zip(&predicted)
            .position(|(a, b)| **a != *b)
            .unwrap_or(observed.len().min(predicted.len()));
        return fail(format!(
            "predicted stream diverges from observed at event {first} \
             (observed {} vs predicted {} events)",
            observed.len(),
            predicted.len()
        ));
    }

    // (4) planner machinery over observed lifetimes agrees.
    if observed_peak(&acc) != acc.peak_bytes() as usize {
        return fail(format!(
            "peak_dynamic over observed lifetimes {} != accountant peak {}",
            observed_peak(&acc),
            acc.peak_bytes()
        ));
    }
    if let Err((a, b)) = check_no_overlap(&acc) {
        return fail(format!("offset layout overlaps live buffers {a} and {b}"));
    }

    // (5) the memory substream is thread-count invariant.
    let (events4, peak4) = memory_substream(net, mode, 4);
    if events4 != events || peak4 != meter_peak {
        return fail("memory substream differs between 1 and 4 threads".to_string());
    }

    // (6) the arena-policy step runs inside the planned slab and is
    // observationally identical to the heap step.
    let (heap_exec, _, heap_stats) = traced_step(net, mode, 1, AllocPolicy::Heap);
    drop(heap_exec);
    let (arena_exec, arena_events, arena_stats) = traced_step(net, mode, 1, AllocPolicy::Arena);
    if arena_stats.loss.to_bits() != heap_stats.loss.to_bits() {
        return fail(format!(
            "arena loss {} != heap loss {} (bitwise)",
            arena_stats.loss, heap_stats.loss
        ));
    }
    let arena_predicted =
        match predict_step_events_for(&graph, mode, AllocPolicy::Arena, &HashMap::new()) {
            Ok(p) => p,
            Err(e) => return fail(format!("arena predictor failed: {e}")),
        };
    let arena_observed: Vec<&Event> = arena_events.iter().filter(|e| e.is_memory()).collect();
    if arena_observed.len() != arena_predicted.len()
        || arena_observed.iter().zip(&arena_predicted).any(|(a, b)| **a != *b)
    {
        return fail("arena stream diverges from its static prediction".to_string());
    }
    let mut arena_acc = MemoryAccountant::new();
    if let Err(e) = arena_acc.fold_all(&arena_events) {
        return fail(format!("malformed arena stream: {e}"));
    }
    if arena_acc.peak_bytes() != arena_stats.peak_live_bytes as u64 {
        return fail("arena accountant peak != executor meter peak".to_string());
    }
    let arena = arena_exec.arena().expect("arena policy implies an arena");
    if let Err(e) = arena_acc.verify_offsets(|name| arena.region(name)) {
        return fail(format!("arena layout violates observed trace: {e}"));
    }
    if arena_acc.peak_bytes() as usize > arena.capacity_bytes() {
        return fail(format!(
            "arena observed peak {} exceeds slab capacity {}",
            arena_acc.peak_bytes(),
            arena.capacity_bytes()
        ));
    }
    if arena.capacity_bytes() != arena.plan().total_bytes {
        return fail("slab capacity != planned bytes".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    banner("Oracle", "observed footprint == planner prediction, per net x mode");
    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline", ExecMode::Baseline),
        ("lossless", ExecMode::Gist(GistConfig::lossless())),
        ("lossy-fp8", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp8))),
    ];
    println!("{:<14} {:<10} {:>12} {:>10}", "net", "mode", "peak(KB)", "verdict");
    let mut failures = 0usize;
    for net in ["TinyConvNet", "SmallVGG", "TinyClassic"] {
        for (mode_name, mode) in &modes {
            let (_, peak) = memory_substream(net, mode, 1);
            match check(net, mode_name, mode) {
                Ok(()) => println!(
                    "{:<14} {:<10} {:>11.1} {:>10}",
                    net,
                    mode_name,
                    peak as f64 / 1024.0,
                    "ok"
                ),
                Err(msg) => {
                    failures += 1;
                    println!(
                        "{net:<14} {mode_name:<10} {:>11.1} {:>10}",
                        peak as f64 / 1024.0,
                        "FAIL"
                    );
                    eprintln!("  {msg}");
                }
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} oracle check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("every observed stream matches its static prediction exactly;");
    println!("no two concurrently-live buffers overlap in the packed layout;");
    println!("arena steps run inside their planned slab, bit-identical to heap.");
    ExitCode::SUCCESS
}
