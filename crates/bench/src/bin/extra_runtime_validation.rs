//! The memory oracle gate: cross-check the live executor, the runtime
//! memory accountant, and the static predictor against each other, and fail
//! (exit 1) on any disagreement. Run by `scripts/verify.sh`.
//!
//! For every small net x stash mode x thread count this checks that:
//!
//! 1. the traced memory-event stream folds cleanly (no double allocs,
//!    mismatched frees, or reuse collisions);
//! 2. the accountant's observed peak equals the executor's own meter
//!    (`StepStats::peak_live_bytes`) exactly;
//! 3. the statically predicted event stream (`gist_runtime::predict`)
//!    matches the observed memory substream event-for-event;
//! 4. `gist-memory`'s dynamic-allocation simulator over the observed buffer
//!    lifetimes reproduces the accountant's peak, and its offset packer
//!    finds a layout in which no two concurrently-live buffers overlap;
//! 5. the memory substream is byte-identical at every thread count (the
//!    spans carry wall-clock time; the memory discipline must not).

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_memory::{check_no_overlap, observed_peak};
use gist_obs::{Event, MemoryAccountant, TraceSink};
use gist_runtime::{predict_step_events, ssdc_stash_sizes, ExecMode, Executor, SyntheticImages};
use std::process::ExitCode;

fn memory_substream(net: &str, mode: &ExecMode, threads: usize) -> (Vec<Event>, usize) {
    gist_par::with_threads(threads, || {
        let batch = 16;
        let graph = match net {
            "TinyConvNet" => gist_models::tiny_convnet(batch, 4),
            "SmallVGG" => gist_models::small_vgg(batch, 4),
            "TinyClassic" => gist_models::tiny_classic(batch, 4),
            _ => unreachable!("unknown net"),
        };
        let mut ds = SyntheticImages::new(4, 16, 0.4, 3);
        let (x, y) = ds.minibatch(batch);
        let mut exec = Executor::new(graph, mode.clone(), 7).expect("executor");
        let sink = TraceSink::new();
        let stats = exec.step_traced(&x, &y, 0.05, &sink).expect("step");
        let events: Vec<Event> = sink
            .take()
            .into_iter()
            .filter(|e| e.is_memory() || matches!(e, Event::Encode { .. }))
            .collect();
        (events, stats.peak_live_bytes)
    })
}

fn check(net: &str, mode_name: &str, mode: &ExecMode) -> Result<(), String> {
    let fail = |msg: String| Err(format!("{net}/{mode_name}: {msg}"));
    let graph = match net {
        "TinyConvNet" => gist_models::tiny_convnet(16, 4),
        "SmallVGG" => gist_models::small_vgg(16, 4),
        "TinyClassic" => gist_models::tiny_classic(16, 4),
        _ => unreachable!("unknown net"),
    };
    let (events, meter_peak) = memory_substream(net, mode, 1);

    // (1) the stream folds cleanly.
    let mut acc = MemoryAccountant::new();
    if let Err(e) = acc.fold_all(&events) {
        return fail(format!("malformed memory stream: {e}"));
    }

    // (2) accountant peak == executor meter peak.
    if acc.peak_bytes() != meter_peak as u64 {
        return fail(format!(
            "accountant peak {} != executor meter peak {}",
            acc.peak_bytes(),
            meter_peak
        ));
    }

    // (3) predicted stream == observed memory substream, event for event.
    let ssdc = ssdc_stash_sizes(&events);
    let predicted = match predict_step_events(&graph, mode, &ssdc) {
        Ok(p) => p,
        Err(e) => return fail(format!("predictor failed: {e}")),
    };
    let observed: Vec<&Event> = events.iter().filter(|e| e.is_memory()).collect();
    if observed.len() != predicted.len() || observed.iter().zip(&predicted).any(|(a, b)| **a != *b)
    {
        let first = observed
            .iter()
            .zip(&predicted)
            .position(|(a, b)| **a != *b)
            .unwrap_or(observed.len().min(predicted.len()));
        return fail(format!(
            "predicted stream diverges from observed at event {first} \
             (observed {} vs predicted {} events)",
            observed.len(),
            predicted.len()
        ));
    }

    // (4) planner machinery over observed lifetimes agrees.
    if observed_peak(&acc) != acc.peak_bytes() as usize {
        return fail(format!(
            "peak_dynamic over observed lifetimes {} != accountant peak {}",
            observed_peak(&acc),
            acc.peak_bytes()
        ));
    }
    if let Err((a, b)) = check_no_overlap(&acc) {
        return fail(format!("offset layout overlaps live buffers {a} and {b}"));
    }

    // (5) the memory substream is thread-count invariant.
    let (events4, peak4) = memory_substream(net, mode, 4);
    if events4 != events || peak4 != meter_peak {
        return fail("memory substream differs between 1 and 4 threads".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    banner("Oracle", "observed footprint == planner prediction, per net x mode");
    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline", ExecMode::Baseline),
        ("lossless", ExecMode::Gist(GistConfig::lossless())),
        ("lossy-fp8", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp8))),
    ];
    println!("{:<14} {:<10} {:>12} {:>10}", "net", "mode", "peak(KB)", "verdict");
    let mut failures = 0usize;
    for net in ["TinyConvNet", "SmallVGG", "TinyClassic"] {
        for (mode_name, mode) in &modes {
            let (_, peak) = memory_substream(net, mode, 1);
            match check(net, mode_name, mode) {
                Ok(()) => println!(
                    "{:<14} {:<10} {:>11.1} {:>10}",
                    net,
                    mode_name,
                    peak as f64 / 1024.0,
                    "ok"
                ),
                Err(msg) => {
                    failures += 1;
                    println!(
                        "{net:<14} {mode_name:<10} {:>11.1} {:>10}",
                        peak as f64 / 1024.0,
                        "FAIL"
                    );
                    eprintln!("  {msg}");
                }
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} oracle check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("every observed stream matches its static prediction exactly;");
    println!("no two concurrently-live buffers overlap in the packed layout.");
    ExitCode::SUCCESS
}
