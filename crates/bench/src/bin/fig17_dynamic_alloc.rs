//! Figure 17: MFR under dynamic memory allocation, Gist encodings on top of
//! dynamic allocation, and the "optimized software" mode that removes the
//! FP32 decode buffer.
//!
//! Paper's claims to check: dynamic allocation alone averages ~1.2x (over
//! 1.5x for Overfeat); Gist lossless/lossy on dynamic reach 1.7x/2.6x; with
//! optimized software, up to 4.1x for AlexNet (2.9x average).

use gist_bench::{banner, PAPER_BATCH};
use gist_core::{Gist, GistConfig};
use gist_encodings::DprFormat;

fn fmt_for(model: &str) -> DprFormat {
    match model {
        "VGG16" => DprFormat::Fp16,
        "Inception" => DprFormat::Fp10,
        _ => DprFormat::Fp8,
    }
}

fn main() {
    banner("Figure 17", "MFR with dynamic allocation and optimized software");
    println!(
        "{:<10} {:>9} {:>11} {:>11} {:>11}",
        "model", "dynamic", "+lossless", "+lossy", "+optsw"
    );
    let mut sums = [0.0f64; 4];
    let mut n = 0.0;
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let fmt = fmt_for(graph.name());
        let dynamic =
            Gist::new(GistConfig::baseline().with_dynamic_allocation()).plan(&graph).expect("plan");
        let lossless =
            Gist::new(GistConfig::lossless().with_dynamic_allocation()).plan(&graph).expect("plan");
        let lossy =
            Gist::new(GistConfig::lossy(fmt).with_dynamic_allocation()).plan(&graph).expect("plan");
        let optsw =
            Gist::new(GistConfig::lossy(fmt).with_dynamic_allocation().with_optimized_software())
                .plan(&graph)
                .expect("plan");
        let row = [dynamic.mfr(), lossless.mfr(), lossy.mfr(), optsw.mfr()];
        println!(
            "{:<10} {:>8.2}x {:>10.2}x {:>10.2}x {:>10.2}x",
            graph.name(),
            row[0],
            row[1],
            row[2],
            row[3]
        );
        for (s, v) in sums.iter_mut().zip(row) {
            *s += v;
        }
        n += 1.0;
    }
    println!(
        "{:<10} {:>8.2}x {:>10.2}x {:>10.2}x {:>10.2}x",
        "average",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    println!();
    println!("paper: dynamic ~1.2x avg (>1.5x Overfeat); Gist on dynamic 1.7x/2.6x");
    println!("       (lossless/lossy); optimized software up to 4.1x (2.9x avg).");
}
