//! Extension study: the paper's distributed-training argument (Sections
//! II-B and VI) made quantitative. Swap-based schemes consume PCIe
//! bandwidth that data-parallel training needs for gradient all-reduce;
//! Gist keeps everything on the GPU and adds nothing.

use gist_bench::banner;
use gist_perf::{distributed_overhead, GpuModel, SwapStrategy};

fn main() {
    banner("Extra", "PCIe contention in data-parallel training (4 GPUs per switch)");
    let gpu = GpuModel::titan_x();
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "model", "gist%", "vdnn%", "cdma(2.5x)%", "naive%"
    );
    for g in gist_models::paper_suite(64) {
        let gist = distributed_overhead(&g, None, 4, &gpu).expect("model");
        let vdnn = distributed_overhead(&g, Some(SwapStrategy::Vdnn), 4, &gpu).expect("model");
        let cdma = distributed_overhead(&g, Some(SwapStrategy::Cdma { compression: 2.5 }), 4, &gpu)
            .expect("model");
        let naive = distributed_overhead(&g, Some(SwapStrategy::Naive), 4, &gpu).expect("model");
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
            g.name(),
            gist,
            vdnn,
            cdma,
            naive
        );
    }
    println!();
    println!("paper: vDNN 'uses PCIe, which is a shared critical resource in distributed");
    println!("       training, potentially causing performance issues'; Gist does not.");
}
