//! Benchmark for the distributed fixed-tree all-reduce: bytes on the wire
//! raw vs SSDC vs DPR, and the virtual-clock stall each strategy pays on
//! the serial link — the gradient-traffic counterpart of the paper's
//! Section VI PCIe-contention argument. Gradients are dense, so SSDC's
//! honest accounting (values + column indices) *costs* wire bytes while
//! DPR's narrower formats save them; the JSON records both so the
//! trade-off is a committed artifact.
//!
//! Run with `cargo run --release -p gist-bench --bin bench_dist_allreduce`.

use gist_dist::{DistTrainer, GradCodec, DEFAULT_SHARDS};
use gist_encodings::DprFormat;
use gist_perf::GpuModel;
use gist_runtime::{ExecMode, Executor, SyntheticImages};
use gist_testkit::BenchGroup;

fn main() {
    let replicas = 4;
    let batch = 4;
    let mut g = BenchGroup::new("dist_allreduce").samples(10);
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.meta("replicas", replicas as u64);
    g.meta("shards", DEFAULT_SHARDS as u64);
    g.meta("shard_batch", batch as u64);

    let gpu = GpuModel::titan_x();
    let codecs: Vec<(&str, GradCodec)> = vec![
        ("raw", GradCodec::None),
        ("ssdc", GradCodec::Ssdc),
        ("dpr_fp16", GradCodec::Dpr(DprFormat::Fp16)),
        ("dpr_fp8", GradCodec::Dpr(DprFormat::Fp8)),
    ];
    for (label, codec) in codecs {
        let mut ds = SyntheticImages::new(4, 16, 0.3, 42);
        let mut shard = || ds.minibatch(batch);
        let mut images = Vec::with_capacity(DEFAULT_SHARDS);
        let mut labels = Vec::with_capacity(DEFAULT_SHARDS);
        for _ in 0..DEFAULT_SHARDS {
            let (x, y) = shard();
            images.push(x);
            labels.push(y);
        }
        let mut trainer = DistTrainer::new(replicas, DEFAULT_SHARDS, codec, || {
            Executor::new(gist_models::tiny_convnet(batch, 4), ExecMode::Baseline, 7)
        })
        .expect("trainer");
        let rep = trainer.step(&images, &labels, 0.01).expect("step");
        let priced = trainer.price(&rep, &gpu);
        g.meta(&format!("{label}_grad_codec"), codec.meta_id());
        g.meta(&format!("{label}_wire_bytes"), priced.bytes_on_wire);
        g.meta(&format!("{label}_reduce_bytes"), rep.reduce_bytes);
        g.meta(&format!("{label}_broadcast_bytes"), rep.broadcast_bytes);
        g.meta(&format!("{label}_dense_grad_bytes"), rep.dense_grad_bytes);
        g.meta(&format!("{label}_stall_ns"), (priced.total_s * 1e9) as u64);
        g.bench(label, || {
            trainer.step(&images, &labels, 0.01).expect("step");
        });
    }
    g.finish();
}
