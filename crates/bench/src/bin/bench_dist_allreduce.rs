//! Benchmark for the distributed fixed-tree all-reduce: bytes on the wire
//! raw vs SSDC vs DPR, and the virtual-clock stall each strategy pays on
//! the serial link — the gradient-traffic counterpart of the paper's
//! Section VI PCIe-contention argument. Gradients are dense, so SSDC's
//! honest accounting (values + column indices) *costs* wire bytes while
//! DPR's narrower formats save them; the JSON records both so the
//! trade-off is a committed artifact.
//!
//! Two paired groups land under `results/`: `dist_allreduce` (the
//! in-process trainer, `transport` meta = 0) and `dist_allreduce_tcp`
//! (a real 2-rank loopback-TCP world, `transport` meta = 1), the latter
//! recording rank 0's **observed** socket bytes next to its **priced**
//! edge bytes per codec so the trace-level observed-vs-priced pairing has
//! a committed artifact too.
//!
//! Run with `cargo run --release -p gist-bench --bin bench_dist_allreduce`.

use gist_dist::{DistTrainer, GradCodec, GradCodecPolicy, DEFAULT_SHARDS};
use gist_encodings::DprFormat;
use gist_net::{NetConfig, NetTrainer, Tcp};
use gist_perf::GpuModel;
use gist_runtime::{ExecMode, Executor, SyntheticImages};
use gist_tensor::Tensor;
use gist_testkit::BenchGroup;

fn shard_tables(batch: usize) -> (Vec<Tensor>, Vec<Vec<usize>>) {
    let mut ds = SyntheticImages::new(4, 16, 0.3, 42);
    let mut images = Vec::with_capacity(DEFAULT_SHARDS);
    let mut labels = Vec::with_capacity(DEFAULT_SHARDS);
    for _ in 0..DEFAULT_SHARDS {
        let (x, y) = ds.minibatch(batch);
        images.push(x);
        labels.push(y);
    }
    (images, labels)
}

fn codecs() -> Vec<(&'static str, GradCodec)> {
    vec![
        ("raw", GradCodec::None),
        ("ssdc", GradCodec::Ssdc),
        ("dpr_fp16", GradCodec::Dpr(DprFormat::Fp16)),
        ("dpr_fp8", GradCodec::Dpr(DprFormat::Fp8)),
    ]
}

fn bench_inprocess(replicas: usize, batch: usize) {
    let mut g = BenchGroup::new("dist_allreduce").samples(10);
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.meta("transport", 0);
    g.meta("replicas", replicas as u64);
    g.meta("shards", DEFAULT_SHARDS as u64);
    g.meta("shard_batch", batch as u64);

    let gpu = GpuModel::titan_x();
    for (label, codec) in codecs() {
        let (images, labels) = shard_tables(batch);
        let mut trainer = DistTrainer::new(replicas, DEFAULT_SHARDS, codec, || {
            Executor::new(gist_models::tiny_convnet(batch, 4), ExecMode::Baseline, 7)
        })
        .expect("trainer");
        let rep = trainer.step(&images, &labels, 0.01).expect("step");
        let priced = trainer.price(&rep, &gpu);
        g.meta(&format!("{label}_grad_codec"), codec.meta_id());
        g.meta(&format!("{label}_wire_bytes"), priced.bytes_on_wire);
        g.meta(&format!("{label}_reduce_bytes"), rep.reduce_bytes);
        g.meta(&format!("{label}_broadcast_bytes"), rep.broadcast_bytes);
        g.meta(&format!("{label}_dense_grad_bytes"), rep.dense_grad_bytes);
        g.meta(&format!("{label}_stall_ns"), (priced.total_s * 1e9) as u64);
        g.bench(label, || {
            trainer.step(&images, &labels, 0.01).expect("step");
        });
    }
    g.finish();
}

/// One paired step over a real 2-rank loopback-TCP world per codec:
/// rank 1 runs on a helper thread, rank 0 is timed on the bench thread.
fn bench_tcp(batch: usize) {
    let world = 2;
    let mut g = BenchGroup::new("dist_allreduce_tcp").samples(5);
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.meta("transport", 1);
    g.meta("replicas", world as u64);
    g.meta("shards", DEFAULT_SHARDS as u64);
    g.meta("shard_batch", batch as u64);

    for (label, codec) in codecs() {
        let policy = GradCodecPolicy::Fixed(codec);
        let peers: Vec<String> = (0..world)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0");
                format!("127.0.0.1:{}", l.local_addr().expect("addr").port())
            })
            .collect();
        // Rank 1 mirrors every step rank 0 takes (the bench harness picks
        // the count during calibration, so rank 1 just follows until rank
        // 0 hangs up and its next exchange reports Disconnected).
        let helper = {
            let peers = peers.clone();
            std::thread::spawn(move || {
                let tcp = Tcp::rendezvous(
                    1,
                    &peers,
                    DEFAULT_SHARDS,
                    codec.meta_id() as u32,
                    &NetConfig::default(),
                )
                .expect("rank 1 rendezvous");
                let mut t = NetTrainer::new(tcp, DEFAULT_SHARDS, policy, || {
                    Executor::new(gist_models::tiny_convnet(batch, 4), ExecMode::Baseline, 7)
                })
                .expect("rank 1 trainer");
                let (images, labels) = shard_tables(batch);
                while t.step(&images, &labels, 0.01).is_ok() {}
            })
        };
        let tcp = Tcp::rendezvous(
            0,
            &peers,
            DEFAULT_SHARDS,
            codec.meta_id() as u32,
            &NetConfig::default(),
        )
        .expect("rank 0 rendezvous");
        let mut trainer = NetTrainer::new(tcp, DEFAULT_SHARDS, policy, || {
            Executor::new(gist_models::tiny_convnet(batch, 4), ExecMode::Baseline, 7)
        })
        .expect("rank 0 trainer");
        let (images, labels) = shard_tables(batch);
        let rep = trainer.step(&images, &labels, 0.01).expect("step");
        g.meta(&format!("{label}_grad_codec"), codec.meta_id());
        g.meta(&format!("{label}_priced_bytes"), rep.reduce_bytes + rep.broadcast_bytes);
        g.meta(&format!("{label}_observed_wire_bytes"), rep.observed_wire_bytes);
        g.meta(&format!("{label}_dense_grad_bytes"), rep.dense_grad_bytes);
        g.bench(label, || {
            trainer.step(&images, &labels, 0.01).expect("step");
        });
        drop(trainer);
        helper.join().expect("rank 1 thread");
    }
    g.finish();
}

fn main() {
    let replicas = 4;
    let batch = 4;
    bench_inprocess(replicas, batch);
    bench_tcp(batch);
}
