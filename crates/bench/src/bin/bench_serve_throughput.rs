//! Benchmark for the gist-serve scheduler: wall-clock throughput and queue
//! latency of a fixed four-job mix as the `--mem-budget` shrinks. The
//! interesting shape is the knee — a generous budget runs every job
//! concurrently (low queue latency, one residency per job), while a tight
//! budget serializes admissions and pays park/resume round-trips through
//! the SSDC host store. Per-budget metadata records jobs/sec (×1000, since
//! meta values are integers), mean queue ticks (×1000), admissions, parks
//! and the observed live-byte peak, so the committed JSON documents both
//! the cost curve and the budget oracle holding at every point.
//!
//! Run with `cargo run --release -p gist-bench --bin bench_serve_throughput`.

use gist_serve::{JobSpec, ServeConfig, Server, StepOrder};
use gist_testkit::BenchGroup;
use std::time::Instant;

fn mix() -> Vec<JobSpec> {
    vec![
        JobSpec::builder("tiny-convnet").name("j0").steps(3).build().unwrap(),
        JobSpec::builder("tiny-classic")
            .name("j1")
            .steps(2)
            .mode(gist_serve::spec::parse_exec_mode("fp8").unwrap())
            .build()
            .unwrap(),
        JobSpec::builder("small-vgg")
            .name("j2")
            .steps(2)
            .alloc(gist_runtime::AllocPolicy::Heap)
            .build()
            .unwrap(),
        JobSpec::builder("tiny-convnet")
            .name("j3")
            .steps(2)
            .replicas(2)
            .codec(gist_encodings::TransferCodec::Ssdc)
            .build()
            .unwrap(),
    ]
}

fn main() {
    let mut g = BenchGroup::new("serve_throughput").samples(5);
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.meta("jobs", mix().len() as u64);

    // Price the mix once so the budget sweep is expressed in leases.
    let mut probe = Server::new(ServeConfig::new(u64::MAX));
    let mut leases = Vec::new();
    for spec in mix() {
        let id = probe.submit(spec).expect("probe submit");
        leases.push(probe.lease_bytes(id));
    }
    let sum: u64 = leases.iter().sum();
    let max = *leases.iter().max().expect("non-empty mix");
    g.meta("lease_sum_bytes", sum);
    g.meta("lease_max_bytes", max);

    // all → everything concurrent; half → some queueing; tight → barely
    // above the largest single lease, forcing serialization and parks.
    let budgets: Vec<(&str, u64)> =
        vec![("budget_all", sum), ("budget_half", sum / 2), ("budget_tight", max + max / 8)];
    for (label, budget) in budgets {
        let run = || {
            let mut config = ServeConfig::new(budget);
            config.order = StepOrder::Ascending;
            config.park_patience = 1;
            let mut server = Server::new(config);
            for spec in mix() {
                server.submit(spec).expect("submit");
            }
            server.run().expect("serve run")
        };
        let start = Instant::now();
        let report = run();
        let elapsed = start.elapsed().as_secs_f64();
        assert!(report.all_completed(), "{label}: every job must finish");
        assert!(report.max_live_bytes <= budget, "{label}: budget oracle");
        let jobs_per_s = report.jobs.len() as f64 / elapsed.max(1e-9);
        g.meta(&format!("{label}_bytes"), budget);
        g.meta(&format!("{label}_ticks"), report.ticks);
        g.meta(&format!("{label}_admissions"), report.admissions);
        g.meta(&format!("{label}_parks"), report.parks);
        g.meta(&format!("{label}_max_live_bytes"), report.max_live_bytes);
        g.meta(&format!("{label}_jobs_per_s_milli"), (jobs_per_s * 1000.0) as u64);
        g.meta(
            &format!("{label}_mean_queue_ticks_milli"),
            (report.mean_queue_ticks() * 1000.0) as u64,
        );
        g.bench(label, || {
            let report = run();
            assert!(report.all_completed());
        });
    }
    g.finish();
}
