//! Figure 16: speedup from training very deep ResNets with the largest
//! minibatch that fits, Gist vs baseline, in a 12 GB GPU memory budget.
//!
//! Paper's claims to check: Gist fits roughly 2x larger minibatches; the
//! resulting utilization improvement grows with depth, reaching ~22% for
//! ResNet-1202.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_perf::{resnet_speedup, GpuModel};

fn main() {
    banner("Figure 16", "deep ResNet speedup from larger Gist-enabled minibatches");
    let gpu = GpuModel::titan_x();
    let budget = 12usize << 30; // 12 GB Titan X
    println!("{:<12} {:>12} {:>12} {:>10}", "network", "base batch", "gist batch", "speedup");
    for depth in [509usize, 851, 1202] {
        let build = move |b: usize| gist_models::resnet_deep(depth, b);
        let name = gist_models::resnet_deep(depth, 1).name().to_string();
        let r = resnet_speedup(&build, &GistConfig::lossy(DprFormat::Fp16), budget, 2048, &gpu)
            .expect("model");
        println!("{:<12} {:>12} {:>12} {:>9.2}x", name, r.baseline_batch, r.gist_batch, r.speedup);
    }
    println!();
    println!("paper: speedup grows with depth, ~22% (1.22x) for ResNet-1202.");
}
