//! Figure 16: speedup from training very deep ResNets with the largest
//! minibatch that fits, Gist vs baseline, in a 12 GB GPU memory budget.
//!
//! Paper's claims to check: Gist fits roughly 2x larger minibatches; the
//! resulting utilization improvement grows with depth, reaching ~22% for
//! ResNet-1202.
//!
//! The second section replaces the closed-form cost of the *alternatives*
//! with executed plans: for each depth, `gist-offload` builds the actual
//! sqrt-N recompute plan and the vDNN swap plan the runtime would train
//! with and drives them through the virtual clock, giving the time price
//! those mechanisms pay for comparable footprint relief — the trade Gist's
//! encodings avoid.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_offload::{simulate, OffloadMode, OffloadPlan, SwapStrategy};
use gist_perf::{resnet_speedup, GpuModel};

fn main() {
    banner("Figure 16", "deep ResNet speedup from larger Gist-enabled minibatches");
    let gpu = GpuModel::titan_x();
    let budget = 12usize << 30; // 12 GB Titan X

    println!("-- analytic model (largest minibatch in budget) --");
    println!("{:<12} {:>12} {:>12} {:>10}", "network", "base batch", "gist batch", "speedup");
    for depth in [509usize, 851, 1202] {
        let build = move |b: usize| gist_models::resnet_deep(depth, b);
        let name = gist_models::resnet_deep(depth, 1).name().to_string();
        let r = resnet_speedup(&build, &GistConfig::lossy(DprFormat::Fp16), budget, 2048, &gpu)
            .expect("model");
        println!("{:<12} {:>12} {:>12} {:>9.2}x", name, r.baseline_batch, r.gist_batch, r.speedup);
    }

    println!();
    println!("-- executed plans (virtual clock, offload alternatives at the base batch) --");
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "network", "recompute ovh%", "vDNN ovh%", "vDNN stall(ms)"
    );
    for depth in [509usize, 851, 1202] {
        let graph = gist_models::resnet_deep(depth, 4);
        let name = graph.name().to_string();
        let enc = vec![gist_core::Encoding::None; graph.len()];
        let rec = OffloadPlan::plan(&graph, &enc, OffloadMode::Recompute).expect("plan");
        let rec_sim = simulate(&graph, &rec, &gpu).expect("sim");
        let swp =
            OffloadPlan::plan(&graph, &enc, OffloadMode::Swap(SwapStrategy::Vdnn)).expect("plan");
        let swp_sim = simulate(&graph, &swp, &gpu).expect("sim");
        println!(
            "{:<12} {:>13.1}% {:>13.1}% {:>14.2}",
            name,
            rec_sim.overhead_pct(),
            swp_sim.overhead_pct(),
            swp_sim.stall_s * 1e3
        );
    }

    println!();
    println!("paper: speedup grows with depth, ~22% (1.22x) for ResNet-1202.");
    println!("note:  offloading buys the same headroom Gist buys, but pays for it in");
    println!("       replayed kernels (recompute) or PCIe stalls (swap) every step;");
    println!("       Gist's encodings keep the data on-device and sidestep both.");
}
