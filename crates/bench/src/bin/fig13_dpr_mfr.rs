//! Figure 13: footprint reduction from DPR alone (no lossless encodings),
//! against the investigation baseline, split stashed vs immediately
//! consumed.
//!
//! Paper's example datapoints: FP16 compresses stashed maps 2x for a total
//! MFR of 1.18x on AlexNet; FP8 compresses them 4x for 1.48x total. VGG16
//! cannot use formats below FP16 without accuracy loss, so its FP8 row is
//! omitted — exactly as in the paper.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::{Gist, GistConfig};
use gist_encodings::DprFormat;

fn smallest_safe_format(model: &str) -> Option<DprFormat> {
    match model {
        "VGG16" => None, // FP16 is already the minimum; no smaller row.
        "Inception" => Some(DprFormat::Fp10),
        _ => Some(DprFormat::Fp8),
    }
}

fn dpr_only(format: DprFormat) -> GistConfig {
    GistConfig { dpr: Some(format), ..GistConfig::baseline() }
}

fn main() {
    banner("Figure 13", "DPR-only MFR vs investigation baseline (stashed vs immediate)");
    println!("{:<10} {:<6} {:>10} {:>10} {:>8}", "model", "fmt", "stashed", "immediate", "MFR");
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let mut formats = vec![DprFormat::Fp16];
        formats.extend(smallest_safe_format(graph.name()));
        for fmt in formats {
            let plan = Gist::new(dpr_only(fmt)).plan(&graph).expect("plan");
            let (stashed, immediate) = plan.raw_stashed_vs_immediate();
            println!(
                "{:<10} {:<6} {:>9.2}G {:>9.2}G {:>7.2}x",
                graph.name(),
                fmt.label(),
                gb(stashed),
                gb(immediate),
                plan.investigation_mfr()
            );
        }
        println!();
    }
    println!("paper: AlexNet 1.18x at FP16, 1.48x at FP8; VGG16 limited to FP16.");
}
