//! Figure 1: breakdown of training memory footprint across data-structure
//! classes for the five CNNs at minibatch 64.
//!
//! Paper's claims to check: larger networks consume GBs even at minibatch
//! 64; stashed feature maps dominate, followed by immediately consumed data
//! (83% of VGG16, 97% of Inception for the two classes combined); weights
//! are a small fraction — the opposite of inference.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_graph::class::{baseline_inventory, class_totals, WorkspaceMode};
use gist_graph::DataClass;

fn main() {
    banner("Figure 1", "memory footprint breakdown by data structure (minibatch 64)");
    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "model", "weights", "wgrads", "stashed", "immed", "gradmaps", "wkspace", "total", "s+i%"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let inv = baseline_inventory(&graph, WorkspaceMode::MemoryOptimal)
            .expect("paper models infer shapes");
        let totals = class_totals(&inv);
        let get =
            |c: DataClass| totals.iter().find(|(cc, _)| *cc == c).map(|(_, b)| *b).unwrap_or(0);
        let w = get(DataClass::Weight);
        let wg = get(DataClass::WeightGrad);
        let st = get(DataClass::StashedFmap);
        let im = get(DataClass::ImmediateFmap);
        let gm = get(DataClass::GradientMap);
        let ws = get(DataClass::Workspace);
        let total = w + wg + st + im + gm + ws;
        let si_pct = 100.0 * (st + im + gm) as f64 / total as f64;
        println!(
            "{:<10} {:>8.2}G {:>8.2}G {:>8.2}G {:>8.2}G {:>8.2}G {:>8.2}G {:>8.2}G {:>6.1}%",
            graph.name(),
            gb(w),
            gb(wg),
            gb(st),
            gb(im),
            gb(gm),
            gb(ws),
            gb(total),
            si_pct
        );
    }
    println!();
    println!("paper: stashed fmaps + immediately consumed dominate training footprint");
    println!("       (83% for VGG16, 97% for Inception); weights are minor.");
}
