//! Extension study: how much of the dynamic-allocation headroom (Figure 17)
//! can a software *offset-packing* allocator recover without hardware
//! support? Compares CNTK-style group sharing, address-level offset
//! packing, and ideal dynamic allocation under the same Gist encodings.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::{AllocationMode, Gist, GistConfig};

fn main() {
    banner("Extra", "allocator ablation: group sharing vs offset packing vs dynamic");
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>14}",
        "model", "static", "offset", "dynamic", "offset gain%"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let run = |mode: AllocationMode| {
            let cfg = GistConfig { allocation: mode, ..GistConfig::lossless() };
            Gist::new(cfg).plan(&graph).expect("plan").optimized_bytes
        };
        let stat = run(AllocationMode::Static);
        let off = run(AllocationMode::OffsetPacked);
        let dynamic = run(AllocationMode::Dynamic);
        println!(
            "{:<10} {:>10.2}G {:>10.2}G {:>10.2}G {:>13.1}%",
            graph.name(),
            gb(stat),
            gb(off),
            gb(dynamic),
            100.0 * (stat - off) as f64 / stat as f64
        );
    }
    println!();
    println!("offset packing recovers part of the dynamic-allocation gap in software,");
    println!("at the cost of address-level fragmentation bookkeeping.");
}
