//! Extension study: how much of the dynamic-allocation headroom (Figure 17)
//! can a software *offset-packing* allocator recover without hardware
//! support? Compares CNTK-style group sharing, address-level offset
//! packing, and ideal dynamic allocation under the same Gist encodings.
//!
//! The second section measures *fragmentation waste* on executed steps:
//! trace a real arena-policy training step, feed the observed lifetimes to
//! both allocators, and report `capacity - observed_peak` for each — the
//! bytes the slab reserves but the step never has live at once.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::{AllocationMode, Gist, GistConfig};
use gist_memory::{
    observed_inventory, plan_offsets_aligned, plan_static, SharingPolicy, ARENA_ALIGN,
};
use gist_obs::{MemoryAccountant, TraceSink};
use gist_runtime::{AllocPolicy, ExecMode, Executor, SyntheticImages};

/// Waste rows from one traced arena step: (peak, first-fit cap, group cap).
fn executed_waste(
    graph: &gist_graph::Graph,
    ds: &SyntheticImages,
    mode: &ExecMode,
) -> (u64, u64, u64) {
    let mut exec = Executor::new_with_policy(graph.clone(), mode.clone(), 7, AllocPolicy::Arena)
        .expect("executor");
    let (x, y) = ds.clone().minibatch(4);
    let sink = TraceSink::new();
    exec.step_traced(&x, &y, 0.05, &sink).expect("step");
    let mut acc = MemoryAccountant::new();
    acc.fold_all(&sink.take()).expect("well-formed stream");
    let items = observed_inventory(&acc);
    let first_fit = plan_offsets_aligned(&items, ARENA_ALIGN).total_bytes as u64;
    let grouped = plan_static(&items, SharingPolicy::Full).total_bytes as u64;
    (acc.peak_bytes(), first_fit, grouped)
}

fn main() {
    banner("Extra", "allocator ablation: group sharing vs offset packing vs dynamic");
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>14}",
        "model", "static", "offset", "dynamic", "offset gain%"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let run = |mode: AllocationMode| {
            let cfg = GistConfig { allocation: mode, ..GistConfig::lossless() };
            Gist::new(cfg).plan(&graph).expect("plan").optimized_bytes
        };
        let stat = run(AllocationMode::Static);
        let off = run(AllocationMode::OffsetPacked);
        let dynamic = run(AllocationMode::Dynamic);
        println!(
            "{:<10} {:>10.2}G {:>10.2}G {:>10.2}G {:>13.1}%",
            graph.name(),
            gb(stat),
            gb(off),
            gb(dynamic),
            100.0 * (stat - off) as f64 / stat as f64
        );
    }
    println!();
    println!("-- executed waste (capacity - observed peak, traced arena steps) --");
    println!(
        "{:<14} {:<10} {:>10} {:>13} {:>13} {:>11} {:>11}",
        "network", "mode", "peak(KB)", "firstfit(KB)", "grouped(KB)", "ff waste%", "grp waste%"
    );
    let nets: Vec<(gist_graph::Graph, SyntheticImages)> = vec![
        (gist_models::small_vgg(4, 3), SyntheticImages::new(3, 16, 0.4, 3)),
        (gist_models::resnet_cifar(1, 4), SyntheticImages::rgb(10, 32, 0.4, 3)),
    ];
    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline", ExecMode::Baseline),
        ("lossless", ExecMode::Gist(GistConfig::lossless())),
    ];
    for (graph, ds) in &nets {
        for (mode_name, mode) in &modes {
            let (peak, ff, grp) = executed_waste(graph, ds, mode);
            let pct = |cap: u64| 100.0 * cap.saturating_sub(peak) as f64 / cap as f64;
            println!(
                "{:<14} {:<10} {:>10.1} {:>13.1} {:>13.1} {:>10.1}% {:>10.1}%",
                graph.name(),
                mode_name,
                peak as f64 / 1024.0,
                ff as f64 / 1024.0,
                grp as f64 / 1024.0,
                pct(ff),
                pct(grp)
            );
        }
    }

    println!();
    println!("offset packing recovers part of the dynamic-allocation gap in software,");
    println!("at the cost of address-level fragmentation bookkeeping. The executed");
    println!("rows pack real observed lifetimes: first-fit's waste is address-level");
    println!("fragmentation; group sharing's is conservative whole-group reservation.");
}
