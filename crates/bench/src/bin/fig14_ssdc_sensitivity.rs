//! Figure 14: SSDC compression ratio per layer over the course of training.
//!
//! Paper's claims to check: compression varies across layers and over time;
//! it is lowest in the first few hundred minibatches while weights are
//! still random, then changes as ReLU sparsity develops with training.
//!
//! Run on the small VGG-style network over the synthetic task (ImageNet is
//! unavailable); the probe records each SSDC layer's achieved ratio and the
//! mean ReLU sparsity every few minibatches.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_runtime::{ExecMode, Executor, SyntheticImages};

fn main() {
    banner("Figure 14", "SSDC compression ratio per layer over minibatches");
    let batch = 16;
    let classes = 16;
    let graph = gist_models::small_vgg(batch, classes);
    let mut exec =
        Executor::new(graph, ExecMode::Gist(GistConfig::lossless()), 7).expect("executor");
    let mut ds = SyntheticImages::new(classes, 16, 1.0, 42);

    let probe_every = 25;
    let total_minibatches = 600;
    let mut header_printed = false;
    for mb in 0..total_minibatches {
        let (x, y) = ds.minibatch(batch);
        let stats = exec.step(&x, &y, 0.1).expect("step");
        if mb % probe_every == 0 {
            if !header_printed {
                print!("{:<6}", "mb");
                for (name, _) in &stats.ssdc_compression {
                    print!("{name:>14}");
                }
                println!("{:>12}   (ratio x | mean ReLU sparsity)", "sparsity");
                header_printed = true;
            }
            print!("{mb:<6}");
            for (_, ratio) in &stats.ssdc_compression {
                print!("{ratio:>14.2}");
            }
            let mean_sparsity: f64 = stats.relu_sparsity.iter().map(|(_, s)| s).sum::<f64>()
                / stats.relu_sparsity.len().max(1) as f64;
            println!("{mean_sparsity:>12.3}");
        }
    }
    println!();
    println!("paper: ratios are low for the first ~200 minibatches (random weights),");
    println!("       then rise and vary per layer as ReLU sparsity develops.");
}
