//! Figure 15: performance overhead of naive CPU↔GPU swapping, vDNN-style
//! prefetched swapping, and Gist, all against the CNTK baseline.
//!
//! Paper's claims to check: naive swapping averages ~30% overhead; vDNN
//! ~15% (max 27% on Inception); Gist stays ~4% (max 7%) because it never
//! leaves the GPU.
//!
//! Two sections: the original closed-form analytic model (`gist-perf`),
//! kept for comparison, and the *executed* numbers — `gist-offload` builds
//! the actual per-layer swap plan the runtime executes and drives it
//! through the deterministic virtual-clock transfer engine, so the
//! overheads below come from the same plan the training step runs, not a
//! second copy of the arithmetic.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_offload::{simulate, OffloadMode, OffloadPlan};
use gist_perf::{gist_overhead, swap_overhead, GpuModel, SwapStrategy};

fn swap_plan(graph: &gist_graph::Graph, strategy: SwapStrategy) -> OffloadPlan {
    let enc = vec![gist_core::Encoding::None; graph.len()];
    OffloadPlan::plan(graph, &enc, OffloadMode::Swap(strategy)).expect("plan")
}

fn main() {
    banner("Figure 15", "swap-based approaches vs Gist (overhead % vs baseline)");
    let gpu = GpuModel::titan_x();

    println!("-- analytic model (gist-perf closed form) --");
    println!("{:<10} {:>12} {:>12} {:>12}", "model", "naive%", "vDNN%", "Gist%");
    let (mut sn, mut sv, mut sg, mut n) = (0.0, 0.0, 0.0, 0.0);
    for graph in gist_models::paper_suite(64) {
        let naive = swap_overhead(&graph, SwapStrategy::Naive, &gpu).expect("model");
        let vdnn = swap_overhead(&graph, SwapStrategy::Vdnn, &gpu).expect("model");
        let gist = gist_overhead(&graph, &GistConfig::lossy(DprFormat::Fp16), &gpu)
            .expect("model")
            .overhead_pct();
        println!("{:<10} {:>11.1}% {:>11.1}% {:>11.1}%", graph.name(), naive, vdnn, gist);
        sn += naive;
        sv += vdnn;
        sg += gist;
        n += 1.0;
    }
    println!("{:<10} {:>11.1}% {:>11.1}% {:>11.1}%", "average", sn / n, sv / n, sg / n);

    println!();
    println!("-- executed plan (gist-offload virtual clock over the runtime swap plan) --");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>15}",
        "model", "naive%", "vDNN%", "cDMA(2x)%", "vDNN stall(ms)"
    );
    let (mut en, mut ev, mut ec, mut m) = (0.0, 0.0, 0.0, 0.0);
    for graph in gist_models::paper_suite(64) {
        let run = |s: SwapStrategy| simulate(&graph, &swap_plan(&graph, s), &gpu).expect("sim");
        let naive = run(SwapStrategy::Naive).overhead_pct();
        let vdnn_report = run(SwapStrategy::Vdnn);
        let cdma = run(SwapStrategy::Cdma { compression: 2.0 }).overhead_pct();
        println!(
            "{:<10} {:>11.1}% {:>11.1}% {:>11.1}% {:>14.2}",
            graph.name(),
            naive,
            vdnn_report.overhead_pct(),
            cdma,
            vdnn_report.stall_s * 1e3
        );
        en += naive;
        ev += vdnn_report.overhead_pct();
        ec += cdma;
        m += 1.0;
    }
    println!("{:<10} {:>11.1}% {:>11.1}% {:>11.1}%", "average", en / m, ev / m, ec / m);

    println!();
    println!("paper: naive ~30% avg, vDNN ~15% avg (max 27% Inception), Gist ~4% (max 7%).");
    println!("note:  the analytic vDNN row is an *idealized* prefetcher (perfect overlap,");
    println!("       no allocation/synchronization cost), so it lower-bounds the paper's");
    println!("       measured overhead; the executed rows drive the per-layer plan the");
    println!("       runtime actually trains with through a double-buffered PCIe engine,");
    println!("       so their stalls include bus contention the closed form cannot see.");
    println!("       The ordering naive >> vDNN > Gist and the Inception worst case are");
    println!("       the reproduced results.");
}
