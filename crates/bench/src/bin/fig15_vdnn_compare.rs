//! Figure 15: performance overhead of naive CPU↔GPU swapping, vDNN-style
//! prefetched swapping, and Gist, all against the CNTK baseline.
//!
//! Paper's claims to check: naive swapping averages ~30% overhead; vDNN
//! ~15% (max 27% on Inception); Gist stays ~4% (max 7%) because it never
//! leaves the GPU.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_perf::{gist_overhead, swap_overhead, GpuModel, SwapStrategy};

fn main() {
    banner("Figure 15", "swap-based approaches vs Gist (overhead % vs baseline)");
    let gpu = GpuModel::titan_x();
    println!("{:<10} {:>12} {:>12} {:>12}", "model", "naive%", "vDNN%", "Gist%");
    let (mut sn, mut sv, mut sg, mut n) = (0.0, 0.0, 0.0, 0.0);
    for graph in gist_models::paper_suite(64) {
        let naive = swap_overhead(&graph, SwapStrategy::Naive, &gpu).expect("model");
        let vdnn = swap_overhead(&graph, SwapStrategy::Vdnn, &gpu).expect("model");
        let gist = gist_overhead(&graph, &GistConfig::lossy(DprFormat::Fp16), &gpu)
            .expect("model")
            .overhead_pct();
        println!("{:<10} {:>11.1}% {:>11.1}% {:>11.1}%", graph.name(), naive, vdnn, gist);
        sn += naive;
        sv += vdnn;
        sg += gist;
        n += 1.0;
    }
    println!("{:<10} {:>11.1}% {:>11.1}% {:>11.1}%", "average", sn / n, sv / n, sg / n);
    println!();
    println!("paper: naive ~30% avg, vDNN ~15% avg (max 27% Inception), Gist ~4% (max 7%).");
    println!("note:  the vDNN model here is an *idealized* prefetcher (perfect overlap,");
    println!("       no allocation/synchronization cost), so it lower-bounds the paper's");
    println!("       measured overhead; the ordering naive >> vDNN > Gist and the");
    println!("       Inception worst case are the reproduced results.");
}
