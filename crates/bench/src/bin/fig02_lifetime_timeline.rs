//! Figure 2 (expository): the lifetime of one stashed feature map, baseline
//! vs Gist — FP32 for the immediate forward use, the small encoded form
//! across the temporal gap, and an FP32 decode buffer for the backward use.
//!
//! Rendered as a text timeline over the actual schedule steps of AlexNet's
//! `conv3_relu` feature map (an SSDC target).

use gist_bench::banner;
use gist_core::{GistConfig, ScheduleBuilder};
use gist_encodings::DprFormat;
use gist_graph::DataStructure;

fn bar(d: &DataStructure, steps: usize, label: &str) {
    let mut line = String::new();
    for s in 0..steps {
        line.push(if d.interval.contains(s) { '#' } else { '.' });
    }
    println!("{label:<26} |{line}| {:>9.2} MB", d.bytes as f64 / (1 << 20) as f64);
}

fn main() {
    banner("Figure 2", "one stashed feature map's lifetime, baseline vs Gist");
    let graph = gist_models::alexnet(64);
    let target = "conv3_relu";

    let base = ScheduleBuilder::new(GistConfig::baseline()).build(&graph).expect("plan");
    let gist = ScheduleBuilder::new(GistConfig::lossy(DprFormat::Fp8)).build(&graph).expect("plan");
    let steps = base.num_steps;
    println!(
        "schedule: steps 0..{} (forward 0..{}, backward {}..{})\n",
        steps,
        steps / 2,
        steps / 2,
        steps
    );

    println!("baseline:");
    for d in &base.inventory {
        if d.name == format!("{target}.y") {
            bar(d, steps, &d.name);
        }
    }
    println!("\ngist (ssdc + fp8 values):");
    for d in &gist.inventory {
        if d.name.starts_with(target) {
            bar(d, steps, &d.name);
        }
    }
    println!();
    println!("the FP32 map lives only for its forward use; the small encoded stash");
    println!("bridges the gap; a decode buffer serves the backward use (Figure 2).");
}
