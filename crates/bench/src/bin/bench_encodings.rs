//! Microbenchmarks for the Gist encoding kernels (testkit harness).
//!
//! These are the measured counterpart to the analytic overhead model of
//! Figure 9/11: encode and decode are streaming passes, and the Binarize
//! ReLU backward touches ~3.7x fewer bytes than its FP32 counterpart.
//! Also includes the CSR-vs-bitmap ablation called out in DESIGN.md.
//!
//! Run with `cargo run --release -p gist-bench --bin bench_encodings`;
//! medians land in `results/bench_*.json`.

use gist_encodings::csr::SsdcConfig;
use gist_encodings::dpr::DprBuffer;
use gist_encodings::{BitMask, CsrMatrix, DprFormat};
use gist_testkit::BenchGroup;
use std::hint::black_box;

const N: usize = 1 << 20; // 1M elements = 4 MB FP32

fn relu_output(sparsity_mod: usize) -> Vec<f32> {
    (0..N).map(|i| if i % sparsity_mod == 0 { (i % 97) as f32 * 0.1 + 0.1 } else { 0.0 }).collect()
}

fn bench_binarize() {
    let mut g = BenchGroup::new("binarize");
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.throughput_bytes((N * 4) as u64);
    let y = relu_output(3);
    let dy: Vec<f32> = (0..N).map(|i| i as f32 * 0.001).collect();
    g.bench("encode", || BitMask::encode(black_box(&y)));
    let mask = BitMask::encode(&y);
    g.bench("relu_backward_mask", || mask.relu_backward(black_box(&dy)).unwrap());
    let yt = gist_tensor::Tensor::from_vec(gist_tensor::Shape::vector(N), y.clone()).unwrap();
    let dyt = gist_tensor::Tensor::from_vec(gist_tensor::Shape::vector(N), dy).unwrap();
    g.bench("relu_backward_fp32", || {
        gist_tensor::ops::relu::backward(black_box(&yt), black_box(&dyt))
    });
    g.finish();
}

fn bench_ssdc() {
    let mut g = BenchGroup::new("ssdc");
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.throughput_bytes((N * 4) as u64);
    for (label, m) in [("sparsity50", 2usize), ("sparsity80", 5), ("sparsity95", 20)] {
        let y = relu_output(m);
        g.bench(&format!("encode_narrow_{label}"), || {
            CsrMatrix::encode(black_box(&y), SsdcConfig::default())
        });
        let csr = CsrMatrix::encode(&y, SsdcConfig::default());
        g.bench(&format!("decode_narrow_{label}"), || csr.decode());
    }
    // Ablation: narrow (1-byte) vs wide (4-byte cuSPARSE-style) indices.
    let y = relu_output(5);
    g.bench("encode_wide_sparsity80", || {
        CsrMatrix::encode(black_box(&y), SsdcConfig { narrow: false, value_format: None })
    });
    g.finish();
}

fn bench_dpr() {
    let mut g = BenchGroup::new("dpr");
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    g.throughput_bytes((N * 4) as u64);
    let y: Vec<f32> = (0..N).map(|i| (i as f32 - N as f32 / 2.0) * 1e-3).collect();
    for f in [DprFormat::Fp16, DprFormat::Fp10, DprFormat::Fp8] {
        g.bench(&format!("encode_{}", f.label()), || DprBuffer::encode(f, black_box(&y)));
        let buf = DprBuffer::encode(f, &y);
        g.bench(&format!("decode_{}", f.label()), || buf.decode());
    }
    g.finish();
}

fn bench_maxpool_map() {
    let mut g = BenchGroup::new("poolmap");
    let argmax: Vec<u8> = (0..N / 4).map(|i| (i % 9) as u8).collect();
    g.bench("encode_4bit", || gist_encodings::PoolIndexMap::encode(black_box(&argmax), 3).unwrap());
    g.finish();
}

fn main() {
    bench_binarize();
    bench_ssdc();
    bench_dpr();
    bench_maxpool_map();
}
