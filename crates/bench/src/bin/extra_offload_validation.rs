//! The offload differential gate: prove that recomputation and swapping
//! are *executable* and *audited*, and fail (exit 1) on any disagreement.
//! Run by `scripts/verify.sh`.
//!
//! For every small net x offload mechanism x stash mode this checks that:
//!
//! 1. an arena-policy training step under the offload plan traces a memory
//!    stream that matches `predict_step_events_offload` event-for-event —
//!    the plan really is the single source of truth for both sides;
//! 2. the runtime accountant's observed peak equals the executor's own
//!    meter (`StepStats::peak_live_bytes`) exactly;
//! 3. the arena layout honors every observed lifetime (`verify_offsets`)
//!    and the observed peak fits the planned slab;
//! 4. the offloaded step's loss is bit-identical to fully-resident heap
//!    execution — offload moves bytes, never values;
//! 5. the virtual-clock simulation of the same plan is causally sound
//!    (every swap-in completes before it is consumed).

use gist_bench::banner;
use gist_core::GistConfig;
use gist_obs::{Event, MemoryAccountant, TraceSink};
use gist_offload::{simulate, OffloadMode, SwapStrategy};
use gist_perf::GpuModel;
use gist_runtime::{predict_step_events_offload, AllocPolicy, ExecMode, Executor, SyntheticImages};
use std::collections::HashMap;
use std::process::ExitCode;

fn nets() -> Vec<(&'static str, gist_graph::Graph, SyntheticImages)> {
    vec![
        ("SmallVGG", gist_models::small_vgg(4, 3), SyntheticImages::new(3, 16, 0.4, 3)),
        ("ResNet-CIFAR", gist_models::resnet_cifar(1, 4), SyntheticImages::rgb(10, 32, 0.4, 3)),
    ]
}

#[allow(clippy::too_many_lines)]
fn check(
    net: &str,
    graph: &gist_graph::Graph,
    ds: &SyntheticImages,
    mode_name: &str,
    mode: &ExecMode,
    off_name: &str,
    offload: OffloadMode,
) -> Result<(u64, u64, f64), String> {
    let fail = |msg: String| Err(format!("{net}/{mode_name}/{off_name}: {msg}"));
    let (x, y) = ds.clone().minibatch(4);

    // Resident heap reference.
    let mut resident = Executor::new(graph.clone(), mode.clone(), 7).map_err(|e| e.to_string())?;
    let resident_stats = resident.step(&x, &y, 0.05).map_err(|e| e.to_string())?;

    // Offloaded arena step, traced.
    let mut exec =
        Executor::new_with_offload(graph.clone(), mode.clone(), 7, AllocPolicy::Arena, offload)
            .map_err(|e| e.to_string())?;
    let sink = TraceSink::new();
    let stats = exec.step_traced(&x, &y, 0.05, &sink).map_err(|e| e.to_string())?;
    let trace = sink.take();

    // (4) bit-identical loss.
    if stats.loss.to_bits() != resident_stats.loss.to_bits() {
        return fail(format!(
            "offloaded loss {} != resident loss {} (bitwise)",
            stats.loss, resident_stats.loss
        ));
    }

    // (1) observed memory substream == offload-aware static prediction.
    let observed: Vec<&Event> = trace.iter().filter(|e| e.is_memory()).collect();
    let predicted = match predict_step_events_offload(
        graph,
        mode,
        AllocPolicy::Arena,
        &HashMap::new(),
        exec.offload_plan(),
    ) {
        Ok(p) => p,
        Err(e) => return fail(format!("offload predictor failed: {e}")),
    };
    if observed.len() != predicted.len() || observed.iter().zip(&predicted).any(|(a, b)| **a != *b)
    {
        let first = observed
            .iter()
            .zip(&predicted)
            .position(|(a, b)| **a != *b)
            .unwrap_or(observed.len().min(predicted.len()));
        return fail(format!(
            "predicted stream diverges from observed at event {first} \
             (observed {} vs predicted {} events)",
            observed.len(),
            predicted.len()
        ));
    }

    // (2) accountant peak == executor meter peak.
    let mut acc = MemoryAccountant::new();
    if let Err(e) = acc.fold_all(&trace) {
        return fail(format!("malformed memory stream: {e}"));
    }
    if acc.peak_bytes() != stats.peak_live_bytes as u64 {
        return fail(format!(
            "accountant peak {} != executor meter peak {}",
            acc.peak_bytes(),
            stats.peak_live_bytes
        ));
    }

    // (3) every observed lifetime fits its planned region; peak fits slab.
    let arena = exec.arena().expect("arena policy implies an arena");
    if let Err(e) = acc.verify_offsets(|name| arena.region(name)) {
        return fail(format!("arena layout violates observed trace: {e}"));
    }
    if acc.peak_bytes() as usize > arena.capacity_bytes() {
        return fail(format!(
            "observed peak {} exceeds slab capacity {}",
            acc.peak_bytes(),
            arena.capacity_bytes()
        ));
    }

    // (5) the virtual clock over the same plan is causally sound.
    let Some(plan) = exec.offload_plan() else {
        return fail("offload mode produced no plan (nothing offloaded?)".to_string());
    };
    let r = match simulate(graph, plan, &GpuModel::titan_x()) {
        Ok(r) => r,
        Err(e) => return fail(format!("virtual clock failed: {e}")),
    };
    if r.transfers.iter().any(|t| t.consume_s < t.end_s) {
        return fail("simulated stash read before swap-in completed".to_string());
    }

    Ok((acc.peak_bytes(), arena.capacity_bytes() as u64, r.stall_s))
}

fn main() -> ExitCode {
    banner("Offload gate", "executed recompute/swap == resident values, planned footprint");
    let modes: Vec<(&str, ExecMode)> = vec![
        ("baseline", ExecMode::Baseline),
        ("lossless", ExecMode::Gist(GistConfig::lossless())),
    ];
    let offloads: Vec<(&str, OffloadMode)> = vec![
        ("recompute", OffloadMode::Recompute),
        ("swap-vdnn", OffloadMode::Swap(SwapStrategy::Vdnn)),
    ];
    println!(
        "{:<14} {:<10} {:<10} {:>10} {:>10} {:>11} {:>8}",
        "net", "mode", "offload", "peak(KB)", "slab(KB)", "stall(us)", "verdict"
    );
    let mut failures = 0usize;
    for (net, graph, ds) in nets() {
        for (mode_name, mode) in &modes {
            for (off_name, offload) in &offloads {
                match check(net, &graph, &ds, mode_name, mode, off_name, *offload) {
                    Ok((peak, cap, stall)) => println!(
                        "{:<14} {:<10} {:<10} {:>10.1} {:>10.1} {:>11.2} {:>8}",
                        net,
                        mode_name,
                        off_name,
                        peak as f64 / 1024.0,
                        cap as f64 / 1024.0,
                        stall * 1e6,
                        "ok"
                    ),
                    Err(msg) => {
                        failures += 1;
                        println!(
                            "{net:<14} {mode_name:<10} {off_name:<10} {:>10} {:>10} {:>11} {:>8}",
                            "-", "-", "-", "FAIL"
                        );
                        eprintln!("  {msg}");
                    }
                }
            }
        }
        println!();
    }
    if failures > 0 {
        eprintln!("{failures} offload gate check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("recompute and swap train bit-identically to resident execution;");
    println!("every offloaded arena step matches its static prediction event-for-event");
    println!("and runs inside the smaller slab the offload plan promised.");
    ExitCode::SUCCESS
}
