//! Extension study: footprint vs. minibatch size, with the 12 GB Titan X
//! line — quantifying the paper's Section II observation that "VGG16 and
//! Inception can only fit in our GPU memory if the minibatch size is 64 and
//! start exceeding the 12 GB GPU memory limit at higher minibatch size",
//! and how far Gist moves that wall.

use gist_bench::{banner, gb};
use gist_core::{Gist, GistConfig};
use gist_encodings::DprFormat;

fn main() {
    banner("Extra", "footprint vs minibatch size (12 GB limit), baseline vs Gist");
    let budget = 12usize << 30;
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>8} {:>8}",
        "model", "batch", "baseline", "gist-lossy", "fits?", "fits?"
    );
    for build in [gist_models::vgg16 as fn(usize) -> _, gist_models::inception] {
        for batch in [32usize, 64, 96, 128, 192] {
            let g = build(batch);
            let base = Gist::new(GistConfig::baseline()).plan(&g).expect("plan");
            let gist = Gist::new(GistConfig::lossy(DprFormat::Fp16)).plan(&g).expect("plan");
            println!(
                "{:<10} {:>6} {:>11.2}G {:>11.2}G {:>8} {:>8}",
                g.name(),
                batch,
                gb(base.optimized_bytes),
                gb(gist.optimized_bytes),
                if base.optimized_bytes <= budget { "yes" } else { "NO" },
                if gist.optimized_bytes <= budget { "yes" } else { "NO" },
            );
        }
        println!();
    }
    println!("paper: higher minibatch sizes are desirable for GPU utilization; Gist");
    println!("       roughly doubles the largest batch that fits.");
}
