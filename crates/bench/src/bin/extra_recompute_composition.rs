//! Extension study: Gist vs sqrt-N layer recomputation (Chen et al., the
//! paper's reference \[4\]) and their composition. The paper: "This work is
//! orthogonal and can achieve additional speedup with Gist encodings" —
//! here quantified as footprint and modelled time overhead.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::GistConfig;
use gist_perf::{composition_report, GpuModel};

fn main() {
    banner("Extra", "Gist vs sqrt-N recomputation vs combined (footprint | time ovh)");
    let gpu = GpuModel::titan_x();
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "model", "baseline", "recompute", "gist", "combined", "rec ovh%", "comb ovh%"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        // Lossless Gist leaves the "Others" stashes in FP32, which is what
        // recomputation can then remove — the composition sweet spot.
        let r = composition_report(&graph, &GistConfig::lossless(), &gpu).expect("model");
        println!(
            "{:<10} {:>9.2}G {:>11.2}G {:>9.2}G {:>11.2}G {:>9.1}% {:>9.1}%",
            graph.name(),
            gb(r.baseline_bytes),
            gb(r.recompute_bytes),
            gb(r.gist_bytes),
            gb(r.combined_bytes),
            r.recompute_overhead_pct,
            r.combined_overhead_pct
        );
    }
    println!();
    println!("recomputation buys memory with ~a forward pass of extra time (tens of %);");
    println!("Gist buys more memory for single-digit overhead; combining them stacks the");
    println!("savings — the paper's 'orthogonal' claim, quantified.");
}
