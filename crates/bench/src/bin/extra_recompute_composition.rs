//! Extension study: Gist vs sqrt-N layer recomputation (Chen et al., the
//! paper's reference \[4\]) and their composition. The paper: "This work is
//! orthogonal and can achieve additional speedup with Gist encodings" —
//! here quantified as footprint and modelled time overhead.
//!
//! The second section re-derives the recompute overhead from the *executed*
//! path: `gist-offload` builds the concrete sqrt-N segment plan the runtime
//! trains with and prices every replayed kernel on the virtual clock. The
//! third section actually runs it: small nets train under
//! `OffloadMode::Recompute` on the arena and the observed peaks are the
//! runtime accountant's, not a model's.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::GistConfig;
use gist_obs::{MemoryAccountant, TraceSink};
use gist_offload::{simulate, OffloadMode, OffloadPlan};
use gist_perf::{composition_report, GpuModel};
use gist_runtime::{AllocPolicy, ExecMode, Executor, SyntheticImages};

/// Observed arena peak of one traced training step.
fn observed_peak(graph: &gist_graph::Graph, ds: &SyntheticImages, offload: OffloadMode) -> u64 {
    let mut exec = Executor::new_with_offload(
        graph.clone(),
        ExecMode::Baseline,
        7,
        AllocPolicy::Arena,
        offload,
    )
    .expect("executor");
    let (x, y) = ds.clone().minibatch(4);
    let sink = TraceSink::new();
    exec.step_traced(&x, &y, 0.05, &sink).expect("step");
    let mut acc = MemoryAccountant::new();
    acc.fold_all(&sink.take()).expect("well-formed stream");
    acc.peak_bytes()
}

fn main() {
    banner("Extra", "Gist vs sqrt-N recomputation vs combined (footprint | time ovh)");
    let gpu = GpuModel::titan_x();
    println!("-- modelled composition (gist-perf closed form) --");
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "model", "baseline", "recompute", "gist", "combined", "rec ovh%", "comb ovh%"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        // Lossless Gist leaves the "Others" stashes in FP32, which is what
        // recomputation can then remove — the composition sweet spot.
        let r = composition_report(&graph, &GistConfig::lossless(), &gpu).expect("model");
        println!(
            "{:<10} {:>9.2}G {:>11.2}G {:>9.2}G {:>11.2}G {:>9.1}% {:>9.1}%",
            graph.name(),
            gb(r.baseline_bytes),
            gb(r.recompute_bytes),
            gb(r.gist_bytes),
            gb(r.combined_bytes),
            r.recompute_overhead_pct,
            r.combined_overhead_pct
        );
    }

    println!();
    println!("-- executed plan (virtual clock over the runtime's sqrt-N segments) --");
    println!("{:<10} {:>10} {:>12} {:>14}", "model", "segments", "replayed ops", "exec rec ovh%");
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        let enc = vec![gist_core::Encoding::None; graph.len()];
        let plan = OffloadPlan::plan(&graph, &enc, OffloadMode::Recompute).expect("plan");
        let replayed: usize = plan.segments.iter().map(|s| s.replay.len()).sum();
        let sim = simulate(&graph, &plan, &gpu).expect("sim");
        println!(
            "{:<10} {:>10} {:>12} {:>13.1}%",
            graph.name(),
            plan.segments.len(),
            replayed,
            sim.overhead_pct()
        );
    }

    println!();
    println!("-- executed step (observed arena peak, resident vs recompute) --");
    println!("{:<14} {:>14} {:>15} {:>9}", "network", "resident(KB)", "recompute(KB)", "saved%");
    let nets: Vec<(gist_graph::Graph, SyntheticImages)> = vec![
        (gist_models::small_vgg(4, 3), SyntheticImages::new(3, 16, 0.4, 3)),
        (gist_models::resnet_cifar(1, 4), SyntheticImages::rgb(10, 32, 0.4, 3)),
    ];
    for (graph, ds) in nets {
        let resident = observed_peak(&graph, &ds, OffloadMode::None);
        let recompute = observed_peak(&graph, &ds, OffloadMode::Recompute);
        println!(
            "{:<14} {:>14.1} {:>15.1} {:>8.1}%",
            graph.name(),
            resident as f64 / 1024.0,
            recompute as f64 / 1024.0,
            100.0 * (resident.saturating_sub(recompute)) as f64 / resident as f64
        );
    }

    println!();
    println!("recomputation buys memory with ~a forward pass of extra time (tens of %);");
    println!("Gist buys more memory for single-digit overhead; combining them stacks the");
    println!("savings — the paper's 'orthogonal' claim, quantified. The executed rows");
    println!("price the concrete segment plan (closure replays included, which the");
    println!("closed form ignores) and measure the peak the accountant actually saw.");
}
