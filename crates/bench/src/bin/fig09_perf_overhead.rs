//! Figure 9: performance overhead of Gist's lossless and lossless+lossy
//! configurations on the modelled Titan X.
//!
//! Paper's claims to check: minimal degradation — 3% average lossless, 4%
//! average with lossy, max 7% (VGG16).

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_perf::{gist_overhead, GpuModel};

fn main() {
    banner("Figure 9", "execution-time overhead of Gist encodings (modelled Titan X)");
    let gpu = GpuModel::titan_x();
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>12} {:>12}",
        "model", "base(ms)", "lossless", "+lossy", "ovh(ll)%", "ovh(ly)%"
    );
    let mut sum_ll = 0.0;
    let mut sum_ly = 0.0;
    let mut n = 0.0;
    for graph in gist_models::paper_suite(64) {
        let ll = gist_overhead(&graph, &GistConfig::lossless(), &gpu).expect("model");
        let ly = gist_overhead(&graph, &GistConfig::lossy(DprFormat::Fp16), &gpu).expect("model");
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>10.1} {:>11.1}% {:>11.1}%",
            graph.name(),
            ll.baseline_s * 1e3,
            ll.gist_s * 1e3,
            ly.gist_s * 1e3,
            ll.overhead_pct(),
            ly.overhead_pct()
        );
        sum_ll += ll.overhead_pct();
        sum_ly += ly.overhead_pct();
        n += 1.0;
    }
    println!(
        "{:<10} {:>11} {:>11} {:>11} {:>11.1}% {:>11.1}%",
        "average",
        "",
        "",
        "",
        sum_ll / n,
        sum_ly / n
    );
    println!();
    println!("paper: 3% average (lossless), 4% (lossless+lossy), max 7% for VGG16.");
}
