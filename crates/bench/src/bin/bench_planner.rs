//! Benchmarks for the Schedule Builder and the static memory planner —
//! the offline analysis cost of Gist (it runs once per training job, so it
//! only needs to be "fast enough", but we track it anyway).
//!
//! Run with `cargo run --release -p gist-bench --bin bench_planner`.

use gist_core::{Gist, GistConfig, ScheduleBuilder};
use gist_memory::{plan_static, SharingPolicy};
use gist_testkit::BenchGroup;
use std::hint::black_box;

fn bench_schedule_builder() {
    let mut g = BenchGroup::new("schedule_builder").samples(20);
    let vgg = gist_models::vgg16(64);
    g.bench("vgg16_lossless", || {
        ScheduleBuilder::new(GistConfig::lossless()).build(black_box(&vgg)).unwrap()
    });
    let inception = gist_models::inception(64);
    g.bench("inception_lossless", || {
        ScheduleBuilder::new(GistConfig::lossless()).build(black_box(&inception)).unwrap()
    });
    g.finish();
}

fn bench_static_planner() {
    let mut g = BenchGroup::new("static_planner").samples(20);
    let vgg = gist_models::vgg16(64);
    let t = ScheduleBuilder::new(GistConfig::lossless()).build(&vgg).unwrap();
    g.bench("vgg16_inventory", || plan_static(black_box(&t.inventory), SharingPolicy::Full));
    let deep = gist_models::resnet_cifar(50, 32); // 302 layers
    let td = ScheduleBuilder::new(GistConfig::lossless()).build(&deep).unwrap();
    g.bench("resnet302_inventory", || plan_static(black_box(&td.inventory), SharingPolicy::Full));
    g.finish();
}

fn bench_end_to_end_plan() {
    let mut g = BenchGroup::new("gist_plan").samples(10);
    let net = gist_models::alexnet(64);
    g.bench("alexnet_lossy_plan", || {
        Gist::new(GistConfig::lossy(gist_encodings::DprFormat::Fp8)).plan(black_box(&net)).unwrap()
    });
    g.finish();
}

fn main() {
    bench_schedule_builder();
    bench_static_planner();
    bench_end_to_end_plan();
}
