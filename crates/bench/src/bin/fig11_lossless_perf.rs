//! Figure 11: performance effect of the lossless encodings in isolation,
//! including Binarize's small *speedup* of the memory-bandwidth-bound ReLU
//! backward pass.
//!
//! The modelled numbers here are complemented by real measured CPU kernel
//! timings in `cargo bench -p gist-bench` (bench target `encodings`), which
//! show the same effect: ReLU backward from a 1-bit mask touches ~33% less
//! memory than from the FP32 stash.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_perf::{gist_overhead, GpuModel};
use std::time::Instant;

fn measured_relu_backward_ratio() -> f64 {
    // A quick real measurement on this host: FP32 relu backward vs
    // mask-based backward over the same data.
    let n = 1 << 24; // 64 MB per array: larger than LLC, bandwidth-bound
    let y: Vec<f32> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { -1.0 }).collect();
    let dy: Vec<f32> = (0..n).map(|i| i as f32 * 0.001).collect();
    let yt = gist_tensor::Tensor::from_vec(gist_tensor::Shape::vector(n), y.clone()).unwrap();
    let dyt = gist_tensor::Tensor::from_vec(gist_tensor::Shape::vector(n), dy.clone()).unwrap();
    let mask = gist_encodings::BitMask::encode(&y);

    let t0 = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..8 {
        let dx = gist_tensor::ops::relu::backward(&yt, &dyt);
        sink += dx.data()[0];
    }
    let fp32_time = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    for _ in 0..8 {
        let dx = mask.relu_backward(&dy).unwrap();
        sink += dx[0];
    }
    let mask_time = t1.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    mask_time / fp32_time
}

fn main() {
    banner("Figure 11", "lossless encoding performance detail");
    let gpu = GpuModel::titan_x();
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>10}",
        "model", "encode(ms)", "decode(ms)", "binsave(ms)", "net ovh%"
    );
    for graph in gist_models::paper_suite(64) {
        let r = gist_overhead(&graph, &GistConfig::lossless(), &gpu).expect("model");
        println!(
            "{:<10} {:>11.2} {:>11.2} {:>13.2} {:>9.1}%",
            graph.name(),
            r.encode_s * 1e3,
            r.decode_s * 1e3,
            r.binarize_saving_s * 1e3,
            r.overhead_pct()
        );
    }
    println!();
    let ratio = measured_relu_backward_ratio();
    println!("measured on this host: mask-based ReLU backward takes {ratio:.2}x the time of");
    println!("the FP32-stash version (paper observes a small improvement from Binarize).");
}
