//! Figure 10: lossless encodings in isolation against the *investigation
//! baseline* (no memory sharing for stashed feature maps).
//!
//! Bars per network: baseline, SSDC alone, Binarize alone, SSDC+Binarize,
//! and finally + inplace. The paper's example datapoint: SSDC alone yields
//! a total MFR of 1.06x for AlexNet.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::{Gist, GistConfig};

fn main() {
    banner("Figure 10", "lossless encodings in isolation (vs investigation baseline)");
    let configs: Vec<(&str, GistConfig)> = vec![
        ("ssdc", GistConfig { ssdc: true, ..GistConfig::baseline() }),
        ("binarize", GistConfig { binarize: true, ..GistConfig::baseline() }),
        ("both", GistConfig { ssdc: true, binarize: true, ..GistConfig::baseline() }),
        ("both+inplace", GistConfig::lossless()),
    ];
    println!(
        "{:<10} {:<13} {:>10} {:>10} {:>10} {:>8}",
        "model", "config", "stashed", "immediate", "invbase", "MFR"
    );
    for graph in gist_models::paper_suite(PAPER_BATCH) {
        for (label, config) in &configs {
            let plan = Gist::new(*config).plan(&graph).expect("plan");
            let (stashed, immediate) = plan.raw_stashed_vs_immediate();
            println!(
                "{:<10} {:<13} {:>9.2}G {:>9.2}G {:>9.2}G {:>7.2}x",
                graph.name(),
                label,
                gb(stashed),
                gb(immediate),
                gb(plan.investigation_baseline_bytes),
                plan.investigation_mfr()
            );
        }
        println!();
    }
    println!("paper: SSDC alone gives AlexNet ~1.06x; encodings shrink the stashed");
    println!("       region while slightly growing immediately-consumed data.");
}
