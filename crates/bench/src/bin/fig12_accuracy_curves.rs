//! Figure 12: training-accuracy curves for Baseline-FP32, the All-FP16
//! immediate-quantization strawman, and Gist's DPR at FP16/FP10/FP8.
//!
//! Paper's claims to check: (1) quantizing every value immediately as it is
//! produced propagates error through the forward pass and hurts training;
//! (2) DPR — quantizing only the stashed copy used in backward — tracks the
//! FP32 curve even at 8 bits for most networks.
//!
//! ImageNet is unavailable, so the curves are produced on the synthetic
//! separable-image task with a small CNN (see DESIGN.md substitutions);
//! the qualitative separation between "immediate" and "delayed" precision
//! reduction is the reproduced result.

use gist_bench::banner;
use gist_core::GistConfig;
use gist_encodings::DprFormat;
use gist_runtime::{train, ExecMode, TrainReport};

fn run(label: &str, mode: ExecMode) -> TrainReport {
    // 8 classes at heavy noise: a task the small CNN learns gradually over
    // the epochs, so the curves have visible shape (as in the paper).
    train(gist_models::small_vgg(16, 8), mode, label, 42, 7, 10, 30, 16, 0.02, 1.6)
        .expect("training runs")
}

fn main() {
    banner("Figure 12", "training accuracy-loss curves: FP32 vs All-FP16 vs Gist DPR");
    let runs = vec![
        run("Baseline-FP32", ExecMode::Baseline),
        run("All-FP16(imm)", ExecMode::UniformImmediate(DprFormat::Fp16)),
        run("All-FP8(imm)", ExecMode::UniformImmediate(DprFormat::Fp8)),
        run("Gist-FP16", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp16))),
        run("Gist-FP10", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp10))),
        run("Gist-FP8", ExecMode::Gist(GistConfig::lossy(DprFormat::Fp8))),
    ];
    print!("{:<16}", "epoch");
    for e in 0..runs[0].epochs.len() {
        print!("{:>8}", e);
    }
    println!("   (accuracy-loss %, lower is better)");
    for r in &runs {
        print!("{:<16}", r.label);
        for e in &r.epochs {
            print!("{:>8.1}", e.accuracy_loss_pct());
        }
        println!();
    }
    println!();
    let base = &runs[0];
    for r in &runs[3..] {
        println!(
            "max accuracy deviation {} vs FP32: {:.3} (paper: curves overlap)",
            r.label,
            r.max_accuracy_deviation(base)
        );
    }
    for r in &runs[1..3] {
        println!(
            "max accuracy deviation {} vs FP32: {:.3} (paper: severe losses)",
            r.label,
            r.max_accuracy_deviation(base)
        );
    }
}
