//! Figure 8: end-to-end Memory Footprint Ratio of Lossless and
//! Lossless+Lossy (DPR) against the CNTK baseline.
//!
//! Paper's claims to check: lossless exceeds 1.5x for AlexNet and VGG16
//! (1.4x average); adding DPR reaches up to 2x (AlexNet), 1.8x average.
//! For DPR, each network uses the smallest format that does not hurt its
//! accuracy (Section V-D1): FP8 for AlexNet/NiN/Overfeat, FP10 for
//! Inception, FP16 for VGG16.

use gist_bench::{banner, gb, PAPER_BATCH};
use gist_core::{Gist, GistConfig};
use gist_encodings::DprFormat;

fn accuracy_safe_format(model: &str) -> DprFormat {
    match model {
        "VGG16" | "ResNet-50" => DprFormat::Fp16,
        "Inception" => DprFormat::Fp10,
        _ => DprFormat::Fp8,
    }
}

fn main() {
    banner("Figure 8", "end-to-end MFR vs CNTK baseline (minibatch 64)");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>6}",
        "model", "baseline", "lossless", "+lossy", "MFR(ll)", "MFR(ly)", "fmt"
    );
    let mut mfr_ll_sum = 0.0;
    let mut mfr_ly_sum = 0.0;
    let mut n = 0.0;
    let mut suite = gist_models::paper_suite(PAPER_BATCH);
    // The paper's methodology lists six CNNs; ResNet joins the suite here
    // (it uses FP16 like other batch-norm-heavy networks).
    suite.push(gist_models::resnet50(PAPER_BATCH));
    for graph in suite {
        let fmt = accuracy_safe_format(graph.name());
        let ll = Gist::new(GistConfig::lossless()).plan(&graph).expect("plan");
        let ly = Gist::new(GistConfig::lossy(fmt)).plan(&graph).expect("plan");
        println!(
            "{:<10} {:>9.2}G {:>11.2}G {:>11.2}G {:>9.2}x {:>9.2}x {:>6}",
            graph.name(),
            gb(ll.baseline_bytes),
            gb(ll.optimized_bytes),
            gb(ly.optimized_bytes),
            ll.mfr(),
            ly.mfr(),
            fmt.label()
        );
        mfr_ll_sum += ll.mfr();
        mfr_ly_sum += ly.mfr();
        n += 1.0;
    }
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>9.2}x {:>9.2}x",
        "average",
        "",
        "",
        "",
        mfr_ll_sum / n,
        mfr_ly_sum / n
    );
    println!();
    println!("paper: lossless >1.5x on AlexNet/VGG16 (avg 1.4x); +DPR up to 2x (avg 1.8x).");
}
