//! Table I: summary of Gist techniques and their target data structures,
//! printed as the policy actually selects them on VGG16.

use gist_bench::banner;
use gist_core::{policy, Encoding, GistConfig};
use gist_encodings::DprFormat;
use gist_graph::PairKind;

fn main() {
    banner("Table I", "technique <-> target data structure (as selected on VGG16)");
    println!(
        "{:<28} {:<36} {:<9}",
        "target data structure", "footprint reduction technique", "type"
    );
    println!("{:<28} {:<36} {:<9}", "ReLU-Pool feature map", "Binarize", "lossless");
    println!(
        "{:<28} {:<36} {:<9}",
        "ReLU-Conv feature map", "Sparse Storage and Dense Compute", "lossless"
    );
    println!("{:<28} {:<36} {:<9}", "other feature maps", "Delayed Precision Reduction", "lossy");
    println!("{:<28} {:<36} {:<9}", "immediately consumed", "inplace computation", "lossless");
    println!();
    println!("policy selections on VGG16 (minibatch 64):");
    let g = gist_models::vgg16(64);
    let assignments = policy::assign(&g, &GistConfig::lossy(DprFormat::Fp16));
    let mut counts = std::collections::BTreeMap::new();
    for a in &assignments {
        let key = format!("{:<12} -> {}", a.kind.label(), a.encoding.label());
        *counts.entry(key).or_insert(0usize) += 1;
    }
    for (k, v) in counts {
        println!("  {k:<28} x{v}");
    }
    // Sanity: every ReLU-Pool map got binarize.
    let violations = assignments
        .iter()
        .filter(|a| a.kind == PairKind::ReluPool && !matches!(a.encoding, Encoding::Binarize))
        .count();
    println!("\nReLU-Pool maps not binarized: {violations} (expect 0)");
}
