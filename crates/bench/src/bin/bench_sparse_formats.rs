//! The paper's sparse-format bake-off (Section IV-A): CSR vs ELL vs Hybrid
//! (plus a bitmap format as an extra ablation point). The paper picked CSR
//! for "lowest format-conversion latency"; this bench measures exactly
//! that — encode and decode latency per format at ReLU-typical sparsity —
//! and prints the encoded sizes alongside.
//!
//! Run with `cargo run --release -p gist-bench --bin bench_sparse_formats`.

use gist_encodings::csr::SsdcConfig;
use gist_encodings::{BitmapMatrix, CsrMatrix, EllMatrix, HybMatrix};
use gist_testkit::BenchGroup;
use std::hint::black_box;

const N: usize = 1 << 20;

fn relu_like(sparsity_mod: usize) -> Vec<f32> {
    // Mildly irregular row densities, like real ReLU outputs.
    (0..N)
        .map(|i| {
            let burst = (i / 256) % 7 == 0;
            if i % sparsity_mod == 0 || (burst && i % 3 == 0) {
                (i % 89) as f32 * 0.1 + 0.1
            } else {
                0.0
            }
        })
        .collect()
}

fn main() {
    let mut g = BenchGroup::new("sparse_format_conversion");
    g.throughput_bytes((N * 4) as u64);
    let data = relu_like(5);

    // Print the size comparison once, outside the timing loops.
    let csr = CsrMatrix::encode(&data, SsdcConfig::default());
    let ell = EllMatrix::encode(&data);
    let hyb = HybMatrix::encode(&data);
    let bmp = BitmapMatrix::encode(&data);
    eprintln!(
        "encoded sizes @ {:.1}% sparsity: dense {} | csr {} | ell {} | hyb {} | bitmap {}",
        100.0 * data.iter().filter(|&&v| v == 0.0).count() as f64 / N as f64,
        N * 4,
        csr.encoded_bytes(),
        ell.encoded_bytes(),
        hyb.encoded_bytes(),
        bmp.encoded_bytes()
    );

    g.bench("csr_encode", || CsrMatrix::encode(black_box(&data), SsdcConfig::default()));
    g.bench("ell_encode", || EllMatrix::encode(black_box(&data)));
    g.bench("hyb_encode", || HybMatrix::encode(black_box(&data)));
    g.bench("bitmap_encode", || BitmapMatrix::encode(black_box(&data)));

    g.bench("csr_decode", || csr.decode());
    g.bench("ell_decode", || ell.decode());
    g.bench("hyb_decode", || hyb.decode());
    g.bench("bitmap_decode", || bmp.decode());
    g.finish();
}
