//! Paired scalar-vs-vector microbenchmarks for every kernel that dispatches
//! through `gist-simd` — the before/after evidence for the SIMD rewiring.
//!
//! Each group runs the *same* workload once per available `GIST_SIMD` level
//! (forced via `gist_simd::with_level`, so one process covers the whole
//! ladder); the `scalar_*` entries are the exact pre-SIMD code path and the
//! `sse2_*`/`avx2_*` entries are the vector kernels that replaced it. The
//! equivalence suite (`tests/simd_equivalence.rs`) proves all entries in a
//! group compute bit-identical results, so any median gap is pure kernel
//! speed. The `simd` meta column records the *ambient* level the process
//! would use by default (0 = scalar, 1 = SSE2, 2 = AVX2).
//!
//! Run with `cargo run --release -p gist-bench --bin bench_simd_kernels`;
//! medians land in `results/bench_simd_{matmul,conv3,codecs}.json`. On a
//! single-core container the vector speedups here are the only ones
//! available — thread scaling is a no-op — so this is also the cleanest
//! signal for the per-kernel effect of the instruction set alone.

use gist_encodings::csr::SsdcConfig;
use gist_encodings::dpr::DprBuffer;
use gist_encodings::{BitMask, CsrMatrix, DprFormat};
use gist_simd::{available_levels, with_level};
use gist_tensor::ops::conv::{self, ConvParams};
use gist_tensor::ops::matmul;
use gist_tensor::{Shape, Tensor};
use gist_testkit::BenchGroup;
use std::hint::black_box;

/// Deterministic pseudo-random f32s (no rand dependency): a splitmix-style
/// walk mapped into [-1, 1).
fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32) - 1.0
        })
        .collect()
}

fn bench_matmul() {
    let mut g = BenchGroup::new("simd_matmul");
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    // One representative GEMM per kernel: the shapes a small_vgg linear /
    // im2col-lowered conv actually produces.
    let (m, k, n) = (64, 256, 256);
    g.throughput_bytes(((m * k + k * n + m * n) * 4) as u64); // operand + result bytes
    let a = filled(m * k, 1);
    let b = filled(k * n, 2);
    let at = filled(k * m, 3);
    let bt = filled(n * k, 4);
    for lvl in available_levels() {
        with_level(lvl, || {
            g.bench(&format!("{lvl}_matmul_{m}x{k}x{n}"), || {
                matmul::matmul(black_box(&a), black_box(&b), m, k, n)
            });
            g.bench(&format!("{lvl}_at_b_{m}x{k}x{n}"), || {
                matmul::matmul_at_b(black_box(&at), black_box(&b), m, k, n)
            });
            g.bench(&format!("{lvl}_a_bt_{m}x{k}x{n}"), || {
                matmul::matmul_a_bt(black_box(&a), black_box(&bt), m, k, n)
            });
        });
    }
    g.finish();
}

fn bench_conv3() {
    let mut g = BenchGroup::new("simd_conv3");
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    // The direct 3x3/stride-1 path (every resnet_cifar / small_vgg body
    // conv): 8 images, 16->16 channels at 32x32.
    let (bn, c, hw, f) = (8, 16, 32, 16);
    let p = ConvParams::new(3, 1, 1);
    g.throughput_bytes((bn * c * hw * hw * 4) as u64);
    let x = Tensor::from_vec(Shape::nchw(bn, c, hw, hw), filled(bn * c * hw * hw, 5)).unwrap();
    let w = Tensor::from_vec(Shape::nchw(f, c, 3, 3), filled(f * c * 9, 6)).unwrap();
    let bias = Tensor::from_vec(Shape::vector(f), filled(f, 7)).unwrap();
    for lvl in available_levels() {
        with_level(lvl, || {
            g.bench(&format!("{lvl}_conv3x3s1_{bn}x{c}x{hw}x{hw}"), || {
                conv::forward(black_box(&x), black_box(&w), Some(black_box(&bias)), p).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_codecs() {
    let mut g = BenchGroup::new("simd_codecs");
    g.meta("threads", gist_par::current_threads() as u64);
    g.meta("simd", gist_simd::level() as u64);
    const N: usize = 1 << 20; // 1M elements = 4 MB FP32, same as bench_encodings
    g.throughput_bytes((N * 4) as u64);
    // ~67% zeros: a realistic post-ReLU activation profile for SSDC.
    let y: Vec<f32> = filled(N, 8).iter().map(|&v| if v > -0.33 { 0.0 } else { v }).collect();
    let dy = filled(N, 9);
    for lvl in available_levels() {
        with_level(lvl, || {
            g.bench(&format!("{lvl}_binarize_encode"), || BitMask::encode(black_box(&y)));
            let mask = BitMask::encode(&y);
            g.bench(&format!("{lvl}_binarize_select"), || {
                mask.relu_backward(black_box(&dy)).unwrap()
            });
            g.bench(&format!("{lvl}_csr_encode"), || {
                CsrMatrix::encode(black_box(&y), SsdcConfig::default())
            });
            let csr = CsrMatrix::encode(&y, SsdcConfig::default());
            g.bench(&format!("{lvl}_csr_decode"), || csr.decode());
            g.bench(&format!("{lvl}_dpr_encode_fp8"), || {
                DprBuffer::encode(DprFormat::Fp8, black_box(&dy))
            });
            let buf = DprBuffer::encode(DprFormat::Fp8, &dy);
            g.bench(&format!("{lvl}_dpr_decode_fp8"), || buf.decode());
        });
    }
    g.finish();
}

fn main() {
    bench_matmul();
    bench_conv3();
    bench_codecs();
}
