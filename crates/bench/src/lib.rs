#![warn(missing_docs)]

//! # gist-bench
//!
//! The experiment harness: one binary per table/figure in the paper's
//! evaluation (run with `cargo run --release -p gist-bench --bin fig08_...`)
//! plus gist-testkit microbenchmarks for the encoding kernels and the
//! memory planner (`cargo run --release -p gist-bench --bin bench_...`,
//! JSON medians under `results/`).
//!
//! Each binary prints the same rows/series the paper reports, labelled with
//! the paper's reference numbers, so `EXPERIMENTS.md` can record
//! paper-vs-measured side by side.

/// Formats bytes as gigabytes with three decimals.
pub fn gb(bytes: usize) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Formats bytes as megabytes with one decimal.
pub fn mb(bytes: usize) -> f64 {
    bytes as f64 / (1u64 << 20) as f64
}

/// Prints a header line for a figure harness.
pub fn banner(figure: &str, caption: &str) {
    println!("==========================================================");
    println!("{figure}: {caption}");
    println!("==========================================================");
}

/// A simple fixed-width row printer: pads each cell to the given widths.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect::<Vec<_>>().join("  ")
}

/// The minibatch size the paper uses for its memory studies.
pub const PAPER_BATCH: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(gb(1 << 30), 1.0);
        assert_eq!(mb(1 << 20), 1.0);
    }

    #[test]
    fn row_pads_right() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
