//! Footprint reports and the Memory Footprint Ratio metric.

use gist_graph::{DataClass, DataStructure};

/// Memory Footprint Ratio: baseline footprint over optimized footprint
/// (Section V-A). Values above 1 mean the optimization reduced footprint.
///
/// # Panics
///
/// Panics if `optimized` is zero.
pub fn mfr(baseline_bytes: usize, optimized_bytes: usize) -> f64 {
    assert!(optimized_bytes > 0, "optimized footprint must be non-zero");
    baseline_bytes as f64 / optimized_bytes as f64
}

/// A per-class footprint breakdown for a model (Figure 1 style).
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintReport {
    /// Model name.
    pub model: String,
    /// (class, bytes) rows in the paper's figure order.
    pub rows: Vec<(DataClass, usize)>,
}

impl FootprintReport {
    /// Builds a report from an inventory, summing raw bytes per class
    /// (no sharing applied — this is the Figure 1 view of what exists).
    pub fn from_inventory(model: impl Into<String>, inventory: &[DataStructure]) -> Self {
        FootprintReport { model: model.into(), rows: gist_graph::class::class_totals(inventory) }
    }

    /// Total bytes across all classes.
    pub fn total(&self) -> usize {
        self.rows.iter().map(|(_, b)| b).sum()
    }

    /// Bytes for one class.
    pub fn class_bytes(&self, class: DataClass) -> usize {
        self.rows.iter().find(|(c, _)| *c == class).map(|(_, b)| *b).unwrap_or(0)
    }

    /// Formats the report as an aligned text table in GB.
    pub fn to_table(&self) -> String {
        let gb = |b: usize| b as f64 / (1u64 << 30) as f64;
        let mut s = format!("{:<24} {:>10}\n", format!("[{}]", self.model), "GB");
        for (class, bytes) in &self.rows {
            s.push_str(&format!("{:<24} {:>10.3}\n", class.label(), gb(*bytes)));
        }
        s.push_str(&format!("{:<24} {:>10.3}\n", "total", gb(self.total())));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_graph::{Interval, NodeId, TensorRole};

    fn ds(class: DataClass, bytes: usize) -> DataStructure {
        DataStructure {
            name: "x".into(),
            role: TensorRole::FeatureMap(NodeId::new(0)),
            class,
            bytes,
            interval: Interval::new(0, 0),
        }
    }

    #[test]
    fn mfr_is_baseline_over_optimized() {
        assert_eq!(mfr(200, 100), 2.0);
        assert_eq!(mfr(100, 100), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn mfr_rejects_zero_denominator() {
        mfr(1, 0);
    }

    #[test]
    fn report_sums_classes() {
        let inv = vec![
            ds(DataClass::StashedFmap, 100),
            ds(DataClass::StashedFmap, 50),
            ds(DataClass::Weight, 10),
        ];
        let r = FootprintReport::from_inventory("m", &inv);
        assert_eq!(r.class_bytes(DataClass::StashedFmap), 150);
        assert_eq!(r.class_bytes(DataClass::Weight), 10);
        assert_eq!(r.class_bytes(DataClass::Workspace), 0);
        assert_eq!(r.total(), 160);
    }

    #[test]
    fn table_contains_all_labels() {
        let r = FootprintReport::from_inventory("m", &[ds(DataClass::GradientMap, 1)]);
        let t = r.to_table();
        assert!(t.contains("gradient maps"));
        assert!(t.contains("total"));
    }
}
