//! Static memory-sharing planner and dynamic-allocation simulator.

use gist_graph::{DataClass, DataStructure};

/// How the static planner is allowed to share memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SharingPolicy {
    /// The CNTK baseline: all data structures participate in sharing.
    #[default]
    Full,
    /// The paper's *investigation baseline* (Section V-A): stashed feature
    /// maps are excluded from sharing so per-encoding effects can be studied
    /// in isolation; everything else shares as usual.
    NoStashedSharing,
}

/// A set of data structures assigned to one shared memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryGroup {
    /// Region size — the largest member.
    pub bytes: usize,
    /// Indices into the planner's input slice.
    pub members: Vec<usize>,
}

/// The planner's output: region groups and the resulting total footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticPlan {
    /// All allocated regions.
    pub groups: Vec<MemoryGroup>,
    /// Sum of region sizes — the static footprint.
    pub total_bytes: usize,
}

impl StaticPlan {
    /// Number of data structures placed.
    pub fn num_items(&self) -> usize {
        self.groups.iter().map(|g| g.members.len()).sum()
    }
}

/// Runs the CNTK-style static allocator.
///
/// Sorts structures by descending size and greedily places each into the
/// first group none of whose members' lifetimes overlap it; otherwise opens
/// a new group. A group's size is its largest member, so total footprint is
/// the sum of group maxima (Section IV-C).
pub fn plan_static(items: &[DataStructure], policy: SharingPolicy) -> StaticPlan {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .bytes
            .cmp(&items[a].bytes)
            .then_with(|| items[a].interval.start.cmp(&items[b].interval.start))
            .then_with(|| a.cmp(&b))
    });

    let mut groups: Vec<MemoryGroup> = Vec::new();
    for idx in order {
        let item = &items[idx];
        let isolated =
            policy == SharingPolicy::NoStashedSharing && item.class == DataClass::StashedFmap;
        let slot = if isolated {
            None
        } else {
            groups.iter().position(|g| {
                g.members.iter().all(|&m| {
                    // Isolated members never accept roommates.
                    let other = &items[m];
                    let other_isolated = policy == SharingPolicy::NoStashedSharing
                        && other.class == DataClass::StashedFmap;
                    !other_isolated && !other.interval.overlaps(&item.interval)
                })
            })
        };
        match slot {
            Some(g) => {
                // Sorted descending, so the group's first member is largest.
                groups[g].members.push(idx);
            }
            None => groups.push(MemoryGroup { bytes: item.bytes, members: vec![idx] }),
        }
    }
    let total_bytes = groups.iter().map(|g| g.bytes).sum();
    StaticPlan { groups, total_bytes }
}

/// Simulates ideal dynamic allocation: each region exists exactly for its
/// lifetime, and the footprint is the peak of the live set (Section V-H).
pub fn peak_dynamic(items: &[DataStructure], num_steps: usize) -> usize {
    (0..num_steps)
        .map(|step| items.iter().filter(|d| d.interval.contains(step)).map(|d| d.bytes).sum())
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_graph::{Interval, NodeId, TensorRole};

    fn ds(name: &str, class: DataClass, bytes: usize, start: usize, end: usize) -> DataStructure {
        DataStructure {
            name: name.into(),
            role: TensorRole::FeatureMap(NodeId::new(0)),
            class,
            bytes,
            interval: Interval::new(start, end),
        }
    }

    /// The paper's Figure 7(a) worked example: a long-lived 10 MB stashed
    /// feature map X plus immediately-consumed variables; the baseline
    /// allocator forms 2 groups totalling 18 MB (10 stashed + 8 shared
    /// immediates).
    #[test]
    fn figure7a_baseline_example() {
        let mb = 1 << 20;
        let items = vec![
            ds("X", DataClass::StashedFmap, 10 * mb, 0, 9),
            ds("A", DataClass::ImmediateFmap, 8 * mb, 2, 3),
            ds("B", DataClass::ImmediateFmap, 6 * mb, 4, 5),
            ds("D", DataClass::GradientMap, 4 * mb, 8, 9),
        ];
        let plan = plan_static(&items, SharingPolicy::Full);
        // X overlaps everything; A/B/D share one 8 MB region.
        assert_eq!(plan.groups.len(), 2);
        assert_eq!(plan.total_bytes, 18 * mb);
    }

    /// Figure 7(b): after encoding, X's FP32 lifetime shrinks to its forward
    /// use, a 2 MB encoded stash spans the temporal gap, and a decode buffer
    /// appears just before the backward use. The FP32 forward/decode buffers
    /// now join the immediately-consumed sharing group, and the footprint
    /// drops from 18 MB to 12 MB (10 shared + 2 encoded stash).
    #[test]
    fn figure7b_encoded_example() {
        let mb = 1 << 20;
        let items = vec![
            ds("X.fp32", DataClass::ImmediateFmap, 10 * mb, 0, 1),
            ds("X.enc", DataClass::StashedFmap, 2 * mb, 1, 5),
            ds("X.dec", DataClass::ImmediateFmap, 10 * mb, 6, 7),
            ds("A", DataClass::ImmediateFmap, 8 * mb, 2, 3),
            ds("B", DataClass::ImmediateFmap, 6 * mb, 4, 5),
            ds("D", DataClass::GradientMap, 4 * mb, 8, 9),
        ];
        let plan = plan_static(&items, SharingPolicy::Full);
        assert_eq!(plan.total_bytes, 12 * mb);
        // The encoded stash gets its own small region; everything else
        // shares the 10 MB region.
        assert_eq!(plan.groups.len(), 2);
    }

    #[test]
    fn disjoint_structures_share_one_region() {
        let items = vec![
            ds("a", DataClass::GradientMap, 10, 0, 1),
            ds("b", DataClass::GradientMap, 7, 2, 3),
            ds("c", DataClass::GradientMap, 3, 4, 5),
        ];
        let plan = plan_static(&items, SharingPolicy::Full);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.total_bytes, 10);
        assert_eq!(plan.num_items(), 3);
    }

    #[test]
    fn overlapping_structures_get_separate_regions() {
        let items = vec![
            ds("a", DataClass::GradientMap, 10, 0, 5),
            ds("b", DataClass::GradientMap, 7, 2, 8),
        ];
        let plan = plan_static(&items, SharingPolicy::Full);
        assert_eq!(plan.total_bytes, 17);
    }

    #[test]
    fn group_size_is_max_member_not_sum() {
        let items = vec![
            ds("big", DataClass::GradientMap, 100, 0, 1),
            ds("small", DataClass::GradientMap, 1, 5, 6),
        ];
        let plan = plan_static(&items, SharingPolicy::Full);
        assert_eq!(plan.total_bytes, 100);
    }

    #[test]
    fn investigation_baseline_isolates_stashed_maps() {
        let items = vec![
            ds("s1", DataClass::StashedFmap, 10, 0, 1),
            ds("s2", DataClass::StashedFmap, 10, 5, 6),
            ds("g", DataClass::GradientMap, 4, 3, 4),
        ];
        let full = plan_static(&items, SharingPolicy::Full);
        // disjoint -> everything shares.
        assert_eq!(full.total_bytes, 10);
        let inv = plan_static(&items, SharingPolicy::NoStashedSharing);
        // stashed maps each get dedicated space; g could share but has no
        // non-isolated partner.
        assert_eq!(inv.total_bytes, 24);
    }

    #[test]
    fn dynamic_peak_is_max_concurrent_live_bytes() {
        let items = vec![
            ds("a", DataClass::StashedFmap, 10, 0, 4),
            ds("b", DataClass::ImmediateFmap, 5, 3, 6),
            ds("c", DataClass::GradientMap, 2, 8, 9),
        ];
        assert_eq!(peak_dynamic(&items, 10), 15);
        assert!(peak_dynamic(&items, 10) <= plan_static(&items, SharingPolicy::Full).total_bytes);
    }

    #[test]
    fn dynamic_never_exceeds_static() {
        // Property spot-check with a pseudo-random batch of intervals.
        let mut items = Vec::new();
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for i in 0..50 {
            let start = next() % 40;
            let len = next() % 10;
            items.push(ds(
                &format!("t{i}"),
                DataClass::ImmediateFmap,
                1 + next() % 1000,
                start,
                start + len,
            ));
        }
        let stat = plan_static(&items, SharingPolicy::Full);
        assert!(peak_dynamic(&items, 64) <= stat.total_bytes);
    }

    #[test]
    fn empty_input_gives_empty_plan() {
        let plan = plan_static(&[], SharingPolicy::Full);
        assert_eq!(plan.total_bytes, 0);
        assert!(plan.groups.is_empty());
        assert_eq!(peak_dynamic(&[], 10), 0);
    }
}
