//! Address-level layout: assigns concrete byte offsets to data structures.
//!
//! The group-based planner ([`crate::plan_static`]) reproduces CNTK's
//! allocator. This module goes one step further and produces an actual
//! offset assignment — useful both as a verifier (no two temporally-live
//! structures may overlap in address space) and as an ablation: offset
//! first-fit packing usually beats group sharing because a large region
//! can host *several* small structures side by side at the same time.
//! (Usually, not always: first-fit can fragment the address space and lose
//! to grouping on adversarial lifetime patterns, so a production planner —
//! and [`gist_core`'s `OffsetPacked` mode] — takes the better of the two.)

use gist_graph::DataStructure;

/// One placed data structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index into the planner's input slice.
    pub item: usize,
    /// Assigned byte offset.
    pub offset: usize,
}

/// A concrete address-space layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffsetPlan {
    /// Placements, in input order.
    pub placements: Vec<Placement>,
    /// Total arena size in bytes.
    pub total_bytes: usize,
}

/// A violation found by [`OffsetPlan::verify_aligned`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutViolation {
    /// Two temporally-overlapping structures occupy overlapping address
    /// ranges (item indices into the planner's input slice).
    Overlap(usize, usize),
    /// A placement's offset is not a multiple of the required alignment.
    Misaligned {
        /// Item index into the planner's input slice.
        item: usize,
        /// The offending byte offset.
        offset: usize,
    },
}

impl OffsetPlan {
    /// Verifies the layout: any two structures whose lifetimes overlap must
    /// occupy disjoint address ranges. Returns the offending pair if not.
    pub fn verify(&self, items: &[DataStructure]) -> Result<(), (usize, usize)> {
        match self.verify_aligned(items, 1) {
            Ok(()) => Ok(()),
            Err(LayoutViolation::Overlap(a, b)) => Err((a, b)),
            Err(LayoutViolation::Misaligned { .. }) => unreachable!("align 1 never misaligns"),
        }
    }

    /// [`OffsetPlan::verify`] plus alignment assertions, as an interval
    /// sweep over lifetime boundaries instead of an O(n²) pairwise scan.
    ///
    /// The sweep walks allocation/release boundaries in time order,
    /// maintaining the address-sorted set of live regions. Because the scan
    /// aborts on the first conflict, the live set is pairwise disjoint at
    /// every step, so only the address-predecessor and -successor of an
    /// incoming region can conflict with it — an O(n log n) check overall.
    ///
    /// # Errors
    ///
    /// The first [`LayoutViolation`] encountered, if any.
    pub fn verify_aligned(
        &self,
        items: &[DataStructure],
        align: usize,
    ) -> Result<(), LayoutViolation> {
        use std::collections::BTreeMap;
        let align = align.max(1);
        // Time boundaries: add at interval.start, remove at interval.end + 1
        // (closed intervals). Removals sort before additions at equal times
        // so back-to-back lifetimes may share an address range.
        #[derive(PartialEq, Eq, PartialOrd, Ord)]
        enum Edge {
            Remove,
            Add,
        }
        let mut edges: Vec<(usize, Edge, usize)> = Vec::with_capacity(self.placements.len() * 2);
        for (pi, p) in self.placements.iter().enumerate() {
            let d = &items[p.item];
            if p.offset % align != 0 {
                return Err(LayoutViolation::Misaligned { item: p.item, offset: p.offset });
            }
            if d.bytes == 0 {
                continue; // empty regions cannot overlap anything
            }
            edges.push((d.interval.start, Edge::Add, pi));
            edges.push((d.interval.end + 1, Edge::Remove, pi));
        }
        edges.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));
        // Live regions keyed by (offset, placement index) -> end offset.
        let mut live: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (_, edge, pi) in edges {
            let p = &self.placements[pi];
            let end = p.offset + items[p.item].bytes;
            match edge {
                Edge::Remove => {
                    live.remove(&(p.offset, pi));
                }
                Edge::Add => {
                    // Predecessor: the live region with the largest offset
                    // <= ours (ties included via the placement-index key).
                    if let Some((&(_, qi), &q_end)) =
                        live.range(..=(p.offset, usize::MAX)).next_back()
                    {
                        if q_end > p.offset {
                            return Err(LayoutViolation::Overlap(self.placements[qi].item, p.item));
                        }
                    }
                    // Successor: the live region with the smallest offset
                    // strictly greater than ours.
                    if let Some((&(q_off, qi), _)) = live.range((p.offset + 1, 0)..).next() {
                        if q_off < end {
                            return Err(LayoutViolation::Overlap(self.placements[qi].item, p.item));
                        }
                    }
                    live.insert((p.offset, pi), end);
                }
            }
        }
        Ok(())
    }
}

/// Rounds `n` up to the next multiple of `align` (`align >= 1`).
fn align_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

/// Greedy best-offset packing: process structures in descending size order
/// and place each at the lowest offset where it fits next to everything
/// temporally live alongside it.
pub fn plan_offsets(items: &[DataStructure]) -> OffsetPlan {
    plan_offsets_aligned(items, 1)
}

/// [`plan_offsets`] restricted to offsets that are multiples of `align` —
/// the form the executable arena consumes (64-byte placement alignment).
pub fn plan_offsets_aligned(items: &[DataStructure], align: usize) -> OffsetPlan {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .bytes
            .cmp(&items[a].bytes)
            .then_with(|| items[a].interval.start.cmp(&items[b].interval.start))
            .then_with(|| a.cmp(&b))
    });
    let mut placed: Vec<Placement> = Vec::with_capacity(items.len());
    let mut total = 0usize;
    for idx in order {
        let item = &items[idx];
        // Collect address ranges of temporally-overlapping placed items.
        let mut blocked: Vec<(usize, usize)> = placed
            .iter()
            .filter(|p| items[p.item].interval.overlaps(&item.interval))
            .map(|p| (p.offset, p.offset + items[p.item].bytes))
            .collect();
        blocked.sort_unstable();
        // First-fit into the gaps, at aligned candidate offsets only.
        let align = align.max(1);
        let mut offset = 0usize;
        for (lo, hi) in blocked {
            if offset + item.bytes <= lo {
                break;
            }
            offset = align_up(offset.max(hi), align);
        }
        placed.push(Placement { item: idx, offset });
        total = total.max(offset + item.bytes);
    }
    placed.sort_by_key(|p| p.item);
    OffsetPlan { placements: placed, total_bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_static, SharingPolicy};
    use gist_graph::{DataClass, Interval, NodeId, TensorRole};

    fn ds(bytes: usize, start: usize, end: usize) -> DataStructure {
        DataStructure {
            name: format!("t{bytes}_{start}"),
            role: TensorRole::FeatureMap(NodeId::new(0)),
            class: DataClass::ImmediateFmap,
            bytes,
            interval: Interval::new(start, end),
        }
    }

    #[test]
    fn non_overlapping_structures_share_offset_zero() {
        let items = vec![ds(10, 0, 1), ds(8, 2, 3), ds(6, 4, 5)];
        let plan = plan_offsets(&items);
        assert_eq!(plan.total_bytes, 10);
        assert!(plan.placements.iter().all(|p| p.offset == 0));
        plan.verify(&items).unwrap();
    }

    #[test]
    fn concurrent_structures_stack() {
        let items = vec![ds(10, 0, 5), ds(8, 0, 5), ds(6, 0, 5)];
        let plan = plan_offsets(&items);
        assert_eq!(plan.total_bytes, 24);
        plan.verify(&items).unwrap();
    }

    /// Offset packing can beat group sharing: two small concurrent tensors
    /// fit side-by-side inside the footprint of one big one they don't
    /// overlap with.
    #[test]
    fn offsets_beat_groups_when_small_pairs_fit_in_big_regions() {
        let items = vec![
            ds(100, 0, 1), // big, early
            ds(40, 2, 3),  // two small ones, concurrent with each other
            ds(40, 2, 3),
        ];
        let groups = plan_static(&items, SharingPolicy::Full);
        let offsets = plan_offsets(&items);
        // Group allocator: {big, small} + {small} = 140.
        assert_eq!(groups.total_bytes, 140);
        // Offset allocator: both smalls fit inside the 100-byte arena.
        assert_eq!(offsets.total_bytes, 100);
        offsets.verify(&items).unwrap();
    }

    #[test]
    fn offsets_are_valid_and_bounded_on_random_inputs() {
        // Pseudo-random spot check: the layout must verify, never beat the
        // peak-live lower bound, and never exceed the no-sharing sum.
        // (First-fit CAN exceed the group plan on fragmented lifetime
        // patterns; the planner-facing mode takes min(offsets, groups).)
        let mut seed = 99u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let items: Vec<DataStructure> = (0..80)
            .map(|_| {
                let start = next() % 50;
                ds(1 + next() % 500, start, start + next() % 12)
            })
            .collect();
        let offsets = plan_offsets(&items);
        offsets.verify(&items).unwrap();
        let peak = crate::planner::peak_dynamic(&items, 64);
        let sum: usize = items.iter().map(|d| d.bytes).sum();
        assert!(offsets.total_bytes >= peak);
        assert!(offsets.total_bytes <= sum);
    }

    /// The fragmentation counterexample found by property testing: a
    /// batchnorm-conv-batchnorm chain where first-fit offset packing loses
    /// to group sharing (the gap at 18432 is too small for the 4 KB
    /// gradient map). Kept as a regression test documenting WHY the
    /// planner-facing mode takes the better of the two plans.
    #[test]
    fn first_fit_can_lose_to_groups_on_fragmented_lifetimes() {
        let items = vec![
            ds(6144, 0, 10),
            ds(6144, 1, 9),
            ds(6144, 9, 10),
            ds(4096, 2, 8),
            ds(4096, 8, 9),
            ds(4096, 3, 7),
            ds(4096, 7, 8),
        ];
        let groups = plan_static(&items, SharingPolicy::Full);
        let offsets = plan_offsets(&items);
        offsets.verify(&items).unwrap();
        assert!(
            offsets.total_bytes > groups.total_bytes,
            "expected fragmentation: offsets {} vs groups {}",
            offsets.total_bytes,
            groups.total_bytes
        );
    }

    #[test]
    fn verify_catches_bad_layouts() {
        let items = vec![ds(10, 0, 5), ds(10, 0, 5)];
        let bad = OffsetPlan {
            placements: vec![
                Placement { item: 0, offset: 0 },
                Placement { item: 1, offset: 5 }, // overlaps [0,10)
            ],
            total_bytes: 15,
        };
        assert_eq!(bad.verify(&items), Err((0, 1)));
    }

    #[test]
    fn empty_input() {
        let plan = plan_offsets(&[]);
        assert_eq!(plan.total_bytes, 0);
        plan.verify(&[]).unwrap();
    }

    /// Reference pairwise scan (the sweep's predecessor): used to check
    /// that the interval sweep accepts/rejects exactly the same layouts.
    fn pairwise_overlap(plan: &OffsetPlan, items: &[DataStructure]) -> bool {
        for (i, a) in plan.placements.iter().enumerate() {
            for b in &plan.placements[i + 1..] {
                let (da, db) = (&items[a.item], &items[b.item]);
                if da.bytes == 0 || db.bytes == 0 || !da.interval.overlaps(&db.interval) {
                    continue;
                }
                if a.offset < b.offset + db.bytes && b.offset < a.offset + da.bytes {
                    return true;
                }
            }
        }
        false
    }

    #[test]
    fn sweep_verify_agrees_with_pairwise_reference_on_random_layouts() {
        let mut seed = 1234u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for case in 0..200 {
            let n = 2 + next() % 12;
            let items: Vec<DataStructure> = (0..n)
                .map(|_| {
                    let start = next() % 8;
                    ds(next() % 6, start, start + next() % 6)
                })
                .collect();
            // Random (often invalid) placements stress the reject path too.
            let plan = OffsetPlan {
                placements: (0..n).map(|i| Placement { item: i, offset: next() % 12 }).collect(),
                total_bytes: 0,
            };
            assert_eq!(
                plan.verify(&items).is_err(),
                pairwise_overlap(&plan, &items),
                "case {case}: sweep and pairwise disagree on {items:?} / {plan:?}"
            );
        }
    }

    #[test]
    fn back_to_back_lifetimes_may_share_an_address() {
        // b starts exactly when a ends: closed intervals [0,3] and [4,6]
        // do not overlap, so offset reuse is legal.
        let items = vec![ds(8, 0, 3), ds(8, 4, 6)];
        let plan = OffsetPlan {
            placements: vec![Placement { item: 0, offset: 0 }, Placement { item: 1, offset: 0 }],
            total_bytes: 8,
        };
        plan.verify(&items).unwrap();
    }

    #[test]
    fn verify_aligned_catches_misaligned_placements() {
        let items = vec![ds(10, 0, 5)];
        let plan =
            OffsetPlan { placements: vec![Placement { item: 0, offset: 24 }], total_bytes: 34 };
        plan.verify_aligned(&items, 8).unwrap();
        assert_eq!(
            plan.verify_aligned(&items, 64),
            Err(LayoutViolation::Misaligned { item: 0, offset: 24 })
        );
    }

    #[test]
    fn aligned_planning_respects_alignment_and_stays_valid() {
        let mut seed = 7u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        let items: Vec<DataStructure> = (0..60)
            .map(|_| {
                let start = next() % 40;
                ds(1 + next() % 700, start, start + next() % 10)
            })
            .collect();
        let plan = plan_offsets_aligned(&items, 64);
        plan.verify_aligned(&items, 64).unwrap();
        assert!(plan.placements.iter().all(|p| p.offset % 64 == 0));
        // Alignment can only grow the footprint relative to the packed plan.
        assert!(plan.total_bytes >= plan_offsets(&items).total_bytes);
    }
}
