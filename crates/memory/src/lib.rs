#![warn(missing_docs)]

//! # gist-memory
//!
//! The memory-allocation substrate: a reimplementation of the CNTK static
//! memory allocator described in Section IV-C of the paper, plus the
//! dynamic-allocation simulator used in its Section V-H discussion.
//!
//! The static allocator performs *memory sharing*: it takes the lifetimes and
//! sizes of all data structures, sorts them by size, and greedily groups
//! structures whose lifetimes do not overlap; each group occupies a single
//! region sized by its largest member. Gist's encodings shorten the FP32
//! lifetime of stashed feature maps, which opens up more sharing
//! opportunities — that interaction (the paper's Figure 7 example) is what
//! turns smaller *encoded* stashes into a smaller *total* footprint.
//!
//! ```
//! use gist_graph::{DataClass, DataStructure, Interval, TensorRole, NodeId};
//! use gist_memory::{plan_static, SharingPolicy};
//!
//! // Two 10-byte structures with disjoint lifetimes share one region.
//! let items = vec![
//!     DataStructure { name: "a".into(), role: TensorRole::GradientMap(NodeId::new(0)),
//!         class: DataClass::GradientMap, bytes: 10, interval: Interval::new(0, 1) },
//!     DataStructure { name: "b".into(), role: TensorRole::GradientMap(NodeId::new(1)),
//!         class: DataClass::GradientMap, bytes: 10, interval: Interval::new(2, 3) },
//! ];
//! let plan = plan_static(&items, SharingPolicy::Full);
//! assert_eq!(plan.total_bytes, 10);
//! ```

pub mod arena;
pub mod granularity;
pub mod layout;
pub mod observed;
pub mod planner;
pub mod report;
pub mod trace;

pub use arena::{align_arena, Arena, ArenaError, ARENA_ALIGN};
pub use granularity::{coarsen_interval, coarsen_lifetimes, PlanGranularity};
pub use layout::{plan_offsets, plan_offsets_aligned, LayoutViolation, OffsetPlan, Placement};
pub use observed::{
    check_no_overlap, check_no_overlap_waves, observed_inventory, observed_peak,
    observed_peak_waves,
};
pub use planner::{peak_dynamic, plan_static, MemoryGroup, SharingPolicy, StaticPlan};
pub use report::{mfr, FootprintReport};
pub use trace::to_chrome_trace;
