//! The executable arena: one planned slab a whole training step runs in.
//!
//! [`Arena::from_events`] lifts a (predicted or observed) memory-event
//! stream into a concrete, backed address space: the stream is folded
//! through the runtime accountant, the resulting lifetimes are packed by
//! [`crate::plan_offsets_aligned`] at [`ARENA_ALIGN`]-byte placements, the
//! layout is verified, and a [`Storage`] slab of exactly the plan's
//! `total_bytes` is allocated. The executor then resolves every buffer
//! name to its planned offset via [`Arena::view`] instead of heap-allocating
//! per op — which is what turns the planner's footprint numbers from
//! accounting into a measured property of execution.

use crate::granularity::{coarsen_lifetimes, PlanGranularity};
use crate::layout::{plan_offsets_aligned, LayoutViolation, OffsetPlan};
use crate::observed_inventory;
use gist_graph::DataStructure;
use gist_obs::{Event, MemoryAccountant};
use gist_tensor::{Shape, Storage, Tensor};
use std::collections::HashMap;
use std::sync::Arc;

/// Byte alignment of every arena placement (one x86 cache line / the widest
/// vector unit — also what real allocators hand out for tensor data).
pub const ARENA_ALIGN: usize = 64;

/// Rounds a byte size up to the next [`ARENA_ALIGN`] boundary — the
/// reservation size the arena-mode executor records for each buffer.
pub fn align_arena(bytes: u64) -> u64 {
    bytes.div_ceil(ARENA_ALIGN as u64) * ARENA_ALIGN as u64
}

/// Why an event stream could not be lifted into an executable arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArenaError {
    /// The event stream itself is malformed (accountant fold failed).
    Stream(String),
    /// The packed layout failed verification — overlap or misalignment.
    Layout(String),
    /// The same buffer name was allocated twice with different placements;
    /// the arena's name-addressed handle table requires unique names.
    DuplicateName(String),
    /// A name lookup missed the handle table.
    UnknownRegion(String),
    /// A view request did not fit its region.
    ViewTooLarge {
        /// Requested buffer name.
        name: String,
        /// Bytes the view needs.
        needed: usize,
        /// Bytes the region holds.
        available: usize,
    },
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArenaError::Stream(e) => write!(f, "malformed event stream: {e}"),
            ArenaError::Layout(e) => write!(f, "arena layout invalid: {e}"),
            ArenaError::DuplicateName(n) => {
                write!(f, "buffer name {n} allocated twice; arena handles must be unique")
            }
            ArenaError::UnknownRegion(n) => write!(f, "no arena region named {n}"),
            ArenaError::ViewTooLarge { name, needed, available } => {
                write!(f, "view of {name} needs {needed} bytes but region holds {available}")
            }
        }
    }
}

impl std::error::Error for ArenaError {}

/// A planned, backed, name-addressed slab (see the module docs).
#[derive(Debug)]
pub struct Arena {
    storage: Arc<Storage>,
    plan: OffsetPlan,
    items: Vec<DataStructure>,
    /// Handle table: buffer name -> (byte offset, region bytes). Contains
    /// both final and pre-rename names for inplace-reused buffers.
    regions: HashMap<String, (usize, usize)>,
}

impl Arena {
    /// Builds an arena for a step whose memory behavior is described by
    /// `events` (typically the *predicted* stream for the planned mode, so
    /// the slab exists before the first kernel runs). Lifetimes are packed
    /// tick-exact ([`PlanGranularity::Event`]); the slab is only sound for
    /// an executor that serializes each wave.
    ///
    /// # Errors
    ///
    /// See [`ArenaError`].
    pub fn from_events(events: &[Event]) -> Result<Self, ArenaError> {
        Self::from_events_granular(events, PlanGranularity::Event, &[])
    }

    /// [`Arena::from_events`] with an explicit granularity. Under
    /// [`PlanGranularity::Wave`], every lifetime is widened to the wave
    /// `groups` (inclusive tick ranges on the stream's accountant timeline)
    /// it intersects before packing, so any two buffers of one wave get
    /// disjoint regions — the plan the executor may run wave items on the
    /// thread pool against. The coarsening happens *here*, in the planner,
    /// so the slab's soundness does not depend on the event stream already
    /// being ordered conservatively.
    ///
    /// # Errors
    ///
    /// See [`ArenaError`].
    pub fn from_events_granular(
        events: &[Event],
        granularity: PlanGranularity,
        groups: &[(usize, usize)],
    ) -> Result<Self, ArenaError> {
        let mut acc = MemoryAccountant::new();
        acc.fold_all(events).map_err(|e| ArenaError::Stream(e.to_string()))?;
        let items = coarsen_lifetimes(&observed_inventory(&acc), granularity, groups);
        let plan = plan_offsets_aligned(&items, ARENA_ALIGN);
        plan.verify_aligned(&items, ARENA_ALIGN).map_err(|v| match v {
            LayoutViolation::Overlap(a, b) => ArenaError::Layout(format!(
                "{} and {} overlap while both live",
                items[a].name, items[b].name
            )),
            LayoutViolation::Misaligned { item, offset } => ArenaError::Layout(format!(
                "{} placed at unaligned offset {offset}",
                items[item].name
            )),
        })?;
        // Lifetimes carry the buffer's FINAL name (after inplace renames);
        // the handle table needs both, so the executor can resolve the
        // producer's name when it allocates and the consumer's afterwards.
        let mut regions: HashMap<String, (usize, usize)> = HashMap::new();
        for (d, p) in items.iter().zip(&plan.placements) {
            debug_assert_eq!(
                p.item,
                regions.len(),
                "plan_offsets returns placements in item order"
            );
            if regions.insert(d.name.clone(), (p.offset, d.bytes)).is_some() {
                return Err(ArenaError::DuplicateName(d.name.clone()));
            }
        }
        let mut rename: HashMap<&str, &str> = HashMap::new();
        for ev in events {
            if let Event::Reuse { from, into } = ev {
                rename.insert(from, into);
            }
        }
        for &from in rename.keys() {
            let mut cur = from;
            while let Some(&next) = rename.get(cur) {
                cur = next;
            }
            let region =
                *regions.get(cur).ok_or_else(|| ArenaError::UnknownRegion(cur.to_string()))?;
            if regions.insert(from.to_string(), region).is_some() {
                return Err(ArenaError::DuplicateName(from.to_string()));
            }
        }
        let storage = Storage::new(plan.total_bytes.div_ceil(4));
        Ok(Arena { storage, plan, items, regions })
    }

    /// Total slab size in bytes — the packed plan's footprint.
    pub fn capacity_bytes(&self) -> usize {
        self.plan.total_bytes
    }

    /// The placed `(byte_offset, bytes)` range of a buffer, if any. This is
    /// the lookup [`gist_obs::MemoryAccountant::verify_offsets`] consumes.
    pub fn region(&self, name: &str) -> Option<(usize, usize)> {
        self.regions.get(name).copied()
    }

    /// A tensor view of `name`'s region under `shape`. The region may be
    /// larger than the view (worst-case stash reservations).
    ///
    /// # Errors
    ///
    /// [`ArenaError::UnknownRegion`] or [`ArenaError::ViewTooLarge`].
    pub fn view(&self, name: &str, shape: Shape) -> Result<Tensor, ArenaError> {
        let (offset, bytes) = self
            .regions
            .get(name)
            .copied()
            .ok_or_else(|| ArenaError::UnknownRegion(name.to_string()))?;
        let needed = shape.numel() * 4;
        if needed > bytes {
            return Err(ArenaError::ViewTooLarge {
                name: name.to_string(),
                needed,
                available: bytes,
            });
        }
        // Cannot fail: verify_aligned proved offset + bytes <= total_bytes,
        // the slab holds total_bytes.div_ceil(4) floats, and offset is
        // 64-aligned so offset / 4 is exact.
        Tensor::view(Arc::clone(&self.storage), offset / 4, shape)
            .map_err(|e| ArenaError::Layout(format!("slab/plan disagree for {name}: {e}")))
    }

    /// Fills a dead buffer's region with NaN so use-after-free reads are
    /// loud (debug builds of the arena executor call this after each Free).
    ///
    /// # Safety
    ///
    /// No live [`Tensor`] view overlapping the region may be read or
    /// written for the duration of the call — the caller must only poison
    /// regions whose buffer's lifetime has ended and whose views are
    /// dropped.
    ///
    /// # Errors
    ///
    /// [`ArenaError::UnknownRegion`] if the name is not placed.
    pub unsafe fn poison(&self, name: &str) -> Result<(), ArenaError> {
        let (offset, bytes) = self
            .regions
            .get(name)
            .copied()
            .ok_or_else(|| ArenaError::UnknownRegion(name.to_string()))?;
        // SAFETY: forwarded caller contract (region is dead, no live views).
        unsafe {
            self.storage.fill(offset / 4, bytes / 4, f32::NAN);
        }
        Ok(())
    }

    /// The packed offset plan backing this arena.
    pub fn plan(&self) -> &OffsetPlan {
        &self.plan
    }

    /// The lifetime inventory the plan was packed against (one entry per
    /// buffer, final names).
    pub fn items(&self) -> &[DataStructure] {
        &self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(name: &str, bytes: u64) -> Event {
        Event::Alloc { name: name.into(), bytes: align_arena(bytes) }
    }

    fn free(name: &str, bytes: u64) -> Event {
        Event::Free { name: name.into(), bytes: align_arena(bytes) }
    }

    #[test]
    fn arena_places_disjoint_lifetimes_in_shared_regions() {
        let events = vec![
            alloc("a.y", 100),
            alloc("b.y", 50),
            free("a.y", 100),
            alloc("c.y", 100),
            free("b.y", 50),
            free("c.y", 100),
        ];
        let arena = Arena::from_events(&events).unwrap();
        // a.y and c.y never overlap in time -> they share a region; peak is
        // 128 (a) + 64 (b) aligned.
        assert_eq!(arena.capacity_bytes(), 192);
        assert_eq!(arena.region("a.y"), arena.region("c.y"));
        let (b_off, b_sz) = arena.region("b.y").unwrap();
        assert_eq!(b_off % ARENA_ALIGN, 0);
        assert_eq!(b_sz, 64);
        assert!(arena.region("ghost").is_none());
    }

    #[test]
    fn views_are_disjoint_and_writable() {
        let events = vec![alloc("x.y", 64), alloc("y.y", 64)];
        let arena = Arena::from_events(&events).unwrap();
        let mut vx = arena.view("x.y", Shape::vector(16)).unwrap();
        let mut vy = arena.view("y.y", Shape::vector(16)).unwrap();
        vx.data_mut().fill(1.0);
        vy.data_mut().fill(2.0);
        assert!(vx.data().iter().all(|&v| v == 1.0));
        assert!(vy.data().iter().all(|&v| v == 2.0));
        // Smaller views of a big region are allowed; larger are not.
        assert!(arena.view("x.y", Shape::vector(4)).is_ok());
        assert!(matches!(
            arena.view("x.y", Shape::vector(17)),
            Err(ArenaError::ViewTooLarge { .. })
        ));
        assert!(matches!(arena.view("nope", Shape::vector(1)), Err(ArenaError::UnknownRegion(_))));
    }

    #[test]
    fn reuse_renames_share_one_region_under_both_names() {
        let events = vec![
            alloc("conv.y", 256),
            Event::Reuse { from: "conv.y".into(), into: "relu.y".into() },
            free("relu.y", 256),
        ];
        let arena = Arena::from_events(&events).unwrap();
        assert_eq!(arena.region("conv.y"), arena.region("relu.y"));
        assert_eq!(arena.capacity_bytes(), 256);
    }

    #[test]
    fn poison_fills_dead_region_with_nan() {
        let events = vec![alloc("x.y", 64)];
        let arena = Arena::from_events(&events).unwrap();
        {
            let mut v = arena.view("x.y", Shape::vector(16)).unwrap();
            v.data_mut().fill(3.0);
        }
        // SAFETY: the only view was dropped above.
        unsafe { arena.poison("x.y").unwrap() };
        let v = arena.view("x.y", Shape::vector(16)).unwrap();
        assert!(v.data().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let err = Arena::from_events(&[free("ghost", 4)]).unwrap_err();
        assert!(matches!(err, ArenaError::Stream(_)));
        // Same name allocated twice (free then re-alloc) is ambiguous for a
        // name-addressed handle table.
        let err = Arena::from_events(&[alloc("x", 4), free("x", 4), alloc("x", 4)]).unwrap_err();
        assert!(matches!(err, ArenaError::DuplicateName(_)));
    }

    #[test]
    fn wave_granularity_separates_same_wave_back_to_back_buffers() {
        // a.y is freed and c.y allocated inside one wave: event packing
        // shares the region; wave packing must not, because the free and
        // the alloc may race once the wave runs concurrently.
        let events = vec![alloc("a.y", 64), free("a.y", 64), alloc("c.y", 64), free("c.y", 64)];
        let event_plan = Arena::from_events(&events).unwrap();
        assert_eq!(event_plan.region("a.y"), event_plan.region("c.y"));
        assert_eq!(event_plan.capacity_bytes(), 64);
        let wave_plan =
            Arena::from_events_granular(&events, PlanGranularity::Wave, &[(0, 3)]).unwrap();
        assert_ne!(wave_plan.region("a.y"), wave_plan.region("c.y"));
        assert_eq!(wave_plan.capacity_bytes(), 128);
        // Ticks outside every group keep event behavior.
        let outside = Arena::from_events_granular(&events, PlanGranularity::Wave, &[]).unwrap();
        assert_eq!(outside.capacity_bytes(), 64);
    }

    #[test]
    fn transients_get_regions_too() {
        let events = vec![
            alloc("a.y", 64),
            Event::Transient { name: "b.dec".into(), bytes: align_arena(100) },
            free("a.y", 64),
        ];
        let arena = Arena::from_events(&events).unwrap();
        let (off, sz) = arena.region("b.dec").unwrap();
        assert_eq!(off % ARENA_ALIGN, 0);
        assert_eq!(sz, 128);
        // The transient is live alongside a.y, so regions are disjoint.
        let (a_off, a_sz) = arena.region("a.y").unwrap();
        assert!(off >= a_off + a_sz || a_off >= off + sz);
    }
}
