//! The plan-granularity seam: how finely buffer lifetimes are resolved
//! when an offset plan is packed.
//!
//! [`PlanGranularity::Event`] keeps the accountant's tick-exact intervals:
//! two buffers may share a region if their event-time lifetimes are
//! disjoint, even when both belong to the same schedule wave. That plan is
//! only sound if the executor *serializes* each wave, because event-time
//! disjointness within a wave says nothing about real time once wave items
//! run concurrently.
//!
//! [`PlanGranularity::Wave`] coarsens every lifetime to the boundaries of
//! the wave groups it touches, so all buffers of a wave are treated as
//! concurrently live. Any two same-wave buffers then overlap in plan time
//! and must receive disjoint regions — which is exactly the invariant that
//! makes it safe to run a wave's kernels on the `gist-par` pool while they
//! read and write arena views. The price is capacity: wave plans can never
//! be smaller than event plans over the same stream, and the delta is the
//! measured cost of concurrency.
//!
//! A *wave group* is an inclusive tick range `(first, last)` on the
//! accountant timeline covering every memory event a wave emitted. Groups
//! are disjoint and sorted; ticks outside every group (offload
//! materialization prologues, end-of-step close-out frees) stay
//! event-granular, because the executor really does run them sequentially.

use gist_graph::{DataStructure, Interval};

/// How finely an offset plan resolves buffer lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanGranularity {
    /// Tick-exact lifetimes; sound only for serialized waves.
    #[default]
    Event,
    /// Wave-coarsened lifetimes; sound for concurrent wave execution.
    Wave,
}

impl PlanGranularity {
    /// Parses `event|wave` (the CLI `--plan` spelling).
    pub fn parse(s: &str) -> Option<PlanGranularity> {
        match s.trim().to_ascii_lowercase().as_str() {
            "event" => Some(PlanGranularity::Event),
            "wave" => Some(PlanGranularity::Wave),
            _ => None,
        }
    }

    /// Display label (inverse of [`PlanGranularity::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            PlanGranularity::Event => "event",
            PlanGranularity::Wave => "wave",
        }
    }
}

impl std::fmt::Display for PlanGranularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Widens one lifetime to the boundaries of every wave group it intersects.
///
/// Because a buffer's liveness is contiguous and groups are disjoint and
/// sorted, it suffices to stretch the start to the first intersected
/// group's start and the end to the last intersected group's end.
pub fn coarsen_interval(iv: Interval, groups: &[(usize, usize)]) -> Interval {
    debug_assert!(groups.windows(2).all(|w| w[0].1 < w[1].0), "groups must be sorted, disjoint");
    // First group whose end reaches the interval.
    let lo = groups.partition_point(|&(_, last)| last < iv.start);
    // One past the last group whose start is inside the interval.
    let hi = groups.partition_point(|&(first, _)| first <= iv.end);
    if lo >= hi {
        return iv; // touches no group: stays event-granular
    }
    Interval::new(iv.start.min(groups[lo].0), iv.end.max(groups[hi - 1].1))
}

/// Returns the inventory with every lifetime coarsened per `granularity`:
/// a no-op under [`PlanGranularity::Event`], wave-group widening under
/// [`PlanGranularity::Wave`].
pub fn coarsen_lifetimes(
    items: &[DataStructure],
    granularity: PlanGranularity,
    groups: &[(usize, usize)],
) -> Vec<DataStructure> {
    let mut out = items.to_vec();
    if granularity == PlanGranularity::Wave {
        for d in &mut out {
            d.interval = coarsen_interval(d.interval, groups);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_graph::{DataClass, NodeId, TensorRole};

    fn ds(name: &str, bytes: usize, start: usize, end: usize) -> DataStructure {
        DataStructure {
            name: name.into(),
            role: TensorRole::FeatureMap(NodeId::new(0)),
            class: DataClass::ImmediateFmap,
            bytes,
            interval: Interval::new(start, end),
        }
    }

    #[test]
    fn parse_and_label_roundtrip() {
        for g in [PlanGranularity::Event, PlanGranularity::Wave] {
            assert_eq!(PlanGranularity::parse(g.label()), Some(g));
        }
        assert_eq!(PlanGranularity::parse(" WAVE "), Some(PlanGranularity::Wave));
        assert_eq!(PlanGranularity::parse("tick"), None);
        assert_eq!(PlanGranularity::default(), PlanGranularity::Event);
    }

    #[test]
    fn coarsening_widens_to_intersected_group_bounds() {
        let groups = [(2, 5), (8, 11)];
        // Entirely inside one group: widened to the group.
        assert_eq!(coarsen_interval(Interval::new(3, 4), &groups), Interval::new(2, 5));
        // Spanning both groups: widened to the union's bounds.
        assert_eq!(coarsen_interval(Interval::new(4, 9), &groups), Interval::new(2, 11));
        // Starting before a group, ending inside: only the end stretches.
        assert_eq!(coarsen_interval(Interval::new(0, 3), &groups), Interval::new(0, 5));
        // Between groups, touching neither: unchanged.
        assert_eq!(coarsen_interval(Interval::new(6, 7), &groups), Interval::new(6, 7));
        // After every group: unchanged.
        assert_eq!(coarsen_interval(Interval::new(12, 14), &groups), Interval::new(12, 14));
    }

    #[test]
    fn wave_coarsening_makes_same_wave_buffers_overlap() {
        // Back-to-back lifetimes inside one wave group: event-disjoint,
        // wave-overlapping — the whole point of the seam.
        let items = vec![ds("a", 64, 2, 3), ds("b", 64, 4, 5)];
        let groups = [(2, 5)];
        assert!(!items[0].interval.overlaps(&items[1].interval));
        let event = coarsen_lifetimes(&items, PlanGranularity::Event, &groups);
        assert_eq!(event[0].interval, items[0].interval);
        let wave = coarsen_lifetimes(&items, PlanGranularity::Wave, &groups);
        assert!(wave[0].interval.overlaps(&wave[1].interval));
        assert_eq!(wave[0].interval, Interval::new(2, 5));
        assert_eq!(wave[1].interval, Interval::new(2, 5));
    }

    #[test]
    fn ticks_outside_every_group_stay_event_granular() {
        let items = vec![ds("prologue", 32, 0, 1), ds("closeout", 32, 12, 13)];
        let wave = coarsen_lifetimes(&items, PlanGranularity::Wave, &[(4, 9)]);
        assert_eq!(wave[0].interval, Interval::new(0, 1));
        assert_eq!(wave[1].interval, Interval::new(12, 13));
    }
}
