//! Observed-footprint analysis: lifts the runtime memory accountant's
//! buffer lifetimes into the planner's [`DataStructure`] inventory, so the
//! same machinery that sizes *predicted* schedules ([`crate::peak_dynamic`],
//! [`crate::plan_offsets`]) runs over what the executor *actually did*.
//!
//! The accountant's tick timeline maps directly onto the planner's step
//! axis: a buffer allocated at tick `a` and freed at tick `f` is live over
//! the closed interval `[a, f - 1]`, and peak candidates occur only at
//! alloc/transient ticks, so `peak_dynamic` over the lifted inventory
//! reproduces the accountant's running peak exactly — that identity is
//! asserted in tests here and exercised end-to-end by the memory oracle.

use crate::granularity::{coarsen_lifetimes, PlanGranularity};
use crate::{peak_dynamic, plan_offsets, OffsetPlan};
use gist_graph::{DataClass, DataStructure, Interval, NodeId, TensorRole};
use gist_obs::MemoryAccountant;

/// Classifies an observed buffer by the executor's naming convention
/// (`<node>.y`, `<node>.stash`, `<node>.dy`, `<node>.dec`).
fn class_of(name: &str, transient: bool) -> DataClass {
    if transient || name.ends_with(".dec") {
        return DataClass::Workspace;
    }
    if name.ends_with(".stash") {
        DataClass::StashedFmap
    } else if name.ends_with(".dy") {
        DataClass::GradientMap
    } else {
        DataClass::ImmediateFmap
    }
}

/// Converts accountant lifetimes into planner data structures.
///
/// Buffers never freed (e.g. the input stash) are treated as live through
/// the final tick. The `role` node-ids are positional placeholders (the
/// accountant sees names, not graph ids); only `name`, `class`, `bytes` and
/// `interval` are meaningful downstream.
pub fn observed_inventory(acc: &MemoryAccountant) -> Vec<DataStructure> {
    let last_tick = acc.num_ticks().saturating_sub(1);
    acc.lives()
        .iter()
        .enumerate()
        .map(|(i, life)| {
            let class = class_of(&life.name, life.transient);
            let role = match class {
                DataClass::StashedFmap => {
                    TensorRole::Encoded { node: NodeId::new(i), encoding: "observed" }
                }
                DataClass::GradientMap => TensorRole::GradientMap(NodeId::new(i)),
                DataClass::Workspace => {
                    TensorRole::Workspace { node: NodeId::new(i), backward: true }
                }
                _ => TensorRole::FeatureMap(NodeId::new(i)),
            };
            DataStructure {
                name: life.name.clone(),
                role,
                class,
                bytes: life.bytes as usize,
                interval: Interval::new(life.start, life.end_or(last_tick)),
            }
        })
        .collect()
}

/// Observed peak footprint computed the planner's way: `peak_dynamic` over
/// the lifted inventory. Equals [`MemoryAccountant::peak_bytes`] on any
/// well-formed trace.
pub fn observed_peak(acc: &MemoryAccountant) -> usize {
    peak_dynamic(&observed_inventory(acc), acc.num_ticks())
}

/// Packs the observed inventory into a concrete address-space layout and
/// verifies it: no two concurrently-live buffers may overlap.
///
/// # Errors
///
/// Returns the names of the offending buffer pair if the layout verifier
/// finds temporally-overlapping structures sharing addresses — which would
/// mean the lifted intervals (and therefore the accountant) are broken,
/// since `plan_offsets` packs against exactly those intervals.
pub fn check_no_overlap(acc: &MemoryAccountant) -> Result<OffsetPlan, (String, String)> {
    let items = observed_inventory(acc);
    let plan = plan_offsets(&items);
    plan.verify(&items).map_err(|(a, b)| (items[a].name.clone(), items[b].name.clone()))?;
    Ok(plan)
}

/// The wave-liveness end of the oracle: verifies an *executed* address
/// assignment (`region`, e.g. an arena handle table) against the observed
/// lifetimes **coarsened to the wave groups** — any two buffers live in
/// the same wave must occupy disjoint ranges, even if their event-time
/// lifetimes were back-to-back. An event-granular plan run against a
/// genuinely multi-node wave fails here; that failure is precisely the
/// race the wave plan exists to exclude.
///
/// # Errors
///
/// A description of the first violation, as for
/// [`MemoryAccountant::verify_offsets`].
pub fn check_no_overlap_waves(
    acc: &MemoryAccountant,
    groups: &[(usize, usize)],
    region: impl Fn(&str) -> Option<(usize, usize)>,
) -> Result<(), String> {
    acc.verify_offsets_grouped(region, groups)
}

/// Observed peak under wave-coarsened lifetimes: what the slab must hold
/// once all buffers of a wave count as concurrently live. Always `>=`
/// [`observed_peak`]; the delta is the measured capacity cost of running
/// waves on the thread pool.
pub fn observed_peak_waves(acc: &MemoryAccountant, groups: &[(usize, usize)]) -> usize {
    let items = coarsen_lifetimes(&observed_inventory(acc), PlanGranularity::Wave, groups);
    peak_dynamic(&items, acc.num_ticks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_obs::Event;

    fn folded(events: &[Event]) -> MemoryAccountant {
        let mut acc = MemoryAccountant::new();
        acc.fold_all(events).unwrap();
        acc
    }

    fn alloc(name: &str, bytes: u64) -> Event {
        Event::Alloc { name: name.into(), bytes }
    }

    fn free(name: &str, bytes: u64) -> Event {
        Event::Free { name: name.into(), bytes }
    }

    #[test]
    fn lifted_inventory_carries_classes_and_intervals() {
        let acc = folded(&[
            alloc("conv1.y", 64),
            alloc("conv1.stash", 16),
            free("conv1.y", 64),
            alloc("conv1.dy", 64),
            Event::Transient { name: "fc.dec".into(), bytes: 32 },
            free("conv1.stash", 16),
        ]);
        let items = observed_inventory(&acc);
        assert_eq!(items.len(), 4);
        let by_name = |n: &str| items.iter().find(|d| d.name == n).unwrap();
        assert_eq!(by_name("conv1.y").class, DataClass::ImmediateFmap);
        assert_eq!(by_name("conv1.stash").class, DataClass::StashedFmap);
        assert_eq!(by_name("conv1.dy").class, DataClass::GradientMap);
        assert_eq!(by_name("fc.dec").class, DataClass::Workspace);
        // conv1.y: alloc tick 0, free tick 2 -> [0, 1].
        assert_eq!(by_name("conv1.y").interval, Interval::new(0, 1));
        // conv1.stash: alloc tick 1, free tick 5 -> [1, 4].
        assert_eq!(by_name("conv1.stash").interval, Interval::new(1, 4));
        // conv1.dy never freed -> live through the last tick.
        assert_eq!(by_name("conv1.dy").interval, Interval::new(3, 5));
    }

    #[test]
    fn observed_peak_equals_accountant_peak() {
        let acc = folded(&[
            alloc("a.y", 100),
            alloc("b.y", 50),
            free("a.y", 100),
            Event::Transient { name: "c.dec".into(), bytes: 200 },
            alloc("d.dy", 10),
        ]);
        assert_eq!(observed_peak(&acc), acc.peak_bytes() as usize);
        assert_eq!(acc.peak_bytes(), 250);
    }

    #[test]
    fn overlap_check_accepts_well_formed_traces() {
        let acc = folded(&[
            alloc("a.y", 100),
            alloc("b.y", 50),
            free("a.y", 100),
            alloc("c.y", 100),
            free("b.y", 50),
            free("c.y", 100),
        ]);
        let plan = check_no_overlap(&acc).unwrap();
        // a.y and c.y have disjoint lifetimes: first-fit reuses the region.
        assert!(plan.total_bytes <= 150, "packing should share: {}", plan.total_bytes);
    }
}
