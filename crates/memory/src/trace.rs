//! Chrome-tracing export of data-structure lifetimes.
//!
//! Writes the `chrome://tracing` / Perfetto JSON array format: one complete
//! event per data structure, with the schedule step as the timebase and the
//! data-structure class as the track. Load the output in a trace viewer to
//! see exactly the lifetime picture of the paper's Figure 2/7.

use gist_graph::DataStructure;
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an inventory as Chrome-tracing JSON. Durations are schedule
/// steps scaled to microseconds (1 step = 1000 us) so viewers show readable
/// spans; `args.bytes` carries the size.
pub fn to_chrome_trace(items: &[DataStructure]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in items.iter().enumerate() {
        let ts = d.interval.start as u64 * 1000;
        let dur = (d.interval.len() as u64).max(1) * 1000;
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": 1, \"tid\": \"{}\", \"args\": {{\"bytes\": {}}}}}",
            escape(&d.name),
            d.class.label(),
            ts,
            dur,
            d.class.label(),
            d.bytes
        );
        out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_graph::{DataClass, Interval, NodeId, TensorRole};

    fn ds(name: &str, start: usize, end: usize) -> DataStructure {
        DataStructure {
            name: name.into(),
            role: TensorRole::FeatureMap(NodeId::new(0)),
            class: DataClass::StashedFmap,
            bytes: 128,
            interval: Interval::new(start, end),
        }
    }

    #[test]
    fn produces_one_complete_event_per_structure() {
        let trace = to_chrome_trace(&[ds("a.y", 0, 3), ds("b.y", 2, 5)]);
        assert_eq!(trace.matches("\"ph\": \"X\"").count(), 2);
        assert!(trace.contains("\"name\": \"a.y\""));
        assert!(trace.contains("\"ts\": 2000"));
        assert!(trace.contains("\"bytes\": 128"));
        assert!(trace.trim_start().starts_with('['));
        assert!(trace.trim_end().ends_with(']'));
    }

    #[test]
    fn escapes_quotes_in_names() {
        let trace = to_chrome_trace(&[ds("we\"ird", 0, 1)]);
        assert!(trace.contains("we\\\"ird"));
    }

    #[test]
    fn empty_inventory_is_valid_json_array() {
        assert_eq!(to_chrome_trace(&[]).trim(), "[\n]");
    }
}
