//! Property suite for the plan-granularity seam: for *any* randomly
//! generated wave schedule, a wave-granular offset plan never lets two
//! buffers that are live in the same wave share a byte — even when their
//! event-time lifetimes are disjoint — and the wave plan's footprint
//! dominates the event plan's, with the measured capacity delta being the
//! honest price of concurrency.
//!
//! Schedules are synthesized directly as alloc/free streams (no graphs):
//! each wave births a handful of buffers, and each buffer dies at the end
//! of its birth wave or a few waves later. Same-wave birth-and-death pairs
//! are the adversarial case — event granularity happily stacks them.

use gist_memory::{
    check_no_overlap_waves, coarsen_lifetimes, observed_inventory, peak_dynamic, Arena,
    PlanGranularity,
};
use gist_obs::{Event, MemoryAccountant};
use gist_testkit::prop::{vec_of, Strategy};
use gist_testkit::{Rng, Runner};

/// One buffer: (bytes, extra waves it stays live past its birth wave).
type Buf = (usize, usize);
/// One schedule: per wave, the buffers born in it.
type Schedule = Vec<Vec<Buf>>;

fn schedules() -> impl Strategy<Value = Schedule> {
    vec_of(vec_of((1usize..5000, 0usize..3), 0..5), 1..8)
}

fn regressions_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/wave_plan_properties.testkit-regressions")
}

/// Lowers a schedule to an event stream plus its wave groups (inclusive
/// tick ranges) and, for each buffer, its `(name, birth wave, death wave)`.
fn lower(schedule: &Schedule) -> (Vec<Event>, Vec<(usize, usize)>, Vec<(String, usize, usize)>) {
    let last = schedule.len() - 1;
    let bufs: Vec<(String, usize, usize, usize)> = schedule
        .iter()
        .enumerate()
        .flat_map(|(w, born)| {
            born.iter().enumerate().map(move |(i, &(bytes, extra))| {
                (format!("w{w}b{i}"), w, (w + extra).min(last), bytes)
            })
        })
        .collect();
    let mut events = Vec::new();
    let mut groups = Vec::new();
    let mut tick = 0usize;
    for w in 0..schedule.len() {
        let start = tick;
        for (name, birth, _, bytes) in &bufs {
            if *birth == w {
                events.push(Event::Alloc { name: name.clone(), bytes: *bytes as u64 });
                tick += 1;
            }
        }
        for (name, _, death, bytes) in &bufs {
            if *death == w {
                events.push(Event::Free { name: name.clone(), bytes: *bytes as u64 });
                tick += 1;
            }
        }
        if tick > start {
            groups.push((start, tick - 1));
        }
    }
    (events, groups, bufs.into_iter().map(|(n, b, d, _)| (n, b, d)).collect())
}

#[test]
fn wave_plans_never_overlap_same_wave_buffers() {
    Runner::new("wave_plans_never_overlap_same_wave_buffers")
        .cases(64)
        .regressions_file(regressions_path())
        .run(&schedules(), |schedule| {
            let (events, groups, bufs) = lower(schedule);
            if events.is_empty() {
                return;
            }
            let wave = Arena::from_events_granular(&events, PlanGranularity::Wave, &groups)
                .expect("wave plan");

            // Independent pairwise check, from the schedule itself rather
            // than the planner's own coarsening: any two buffers whose
            // birth..death *wave* ranges intersect must occupy disjoint
            // byte ranges.
            for (i, (a, ab, ad)) in bufs.iter().enumerate() {
                for (b, bb, bd) in bufs.iter().skip(i + 1) {
                    if ab.max(bb) <= ad.min(bd) {
                        let (ao, al) = wave.region(a).expect("planned");
                        let (bo, bl) = wave.region(b).expect("planned");
                        assert!(
                            ao + al <= bo || bo + bl <= ao,
                            "{a} [{ao},+{al}) and {b} [{bo},+{bl}) share bytes while \
                             live in the same wave"
                        );
                    }
                }
            }

            // The library-level oracle agrees.
            let mut acc = MemoryAccountant::new();
            acc.fold_all(&events).expect("well-formed stream");
            check_no_overlap_waves(&acc, &groups, |name| wave.region(name))
                .expect("oracle: same-wave disjointness");

            // Footprint monotonicity: coarsening lifetimes can only grow
            // the peak, and the packed wave slab holds its own peak.
            let inv = observed_inventory(&acc);
            let event_peak = peak_dynamic(&inv, acc.num_ticks());
            let wave_items = coarsen_lifetimes(&inv, PlanGranularity::Wave, &groups);
            let wave_peak = peak_dynamic(&wave_items, acc.num_ticks());
            assert!(wave_peak >= event_peak, "wave peak {wave_peak} below event peak {event_peak}");
            assert!(
                wave.capacity_bytes() >= wave_peak,
                "slab {} below wave peak {wave_peak}",
                wave.capacity_bytes()
            );
            let event = Arena::from_events_granular(&events, PlanGranularity::Event, &groups)
                .expect("event plan");
            println!(
                "wave-granularity cost: peak {event_peak} -> {wave_peak} \
                 (+{}), slab {} -> {} ({} waves, {} buffers)",
                wave_peak - event_peak,
                event.capacity_bytes(),
                wave.capacity_bytes(),
                groups.len(),
                bufs.len(),
            );
        });
}

/// The persisted seeds must keep decoding to schedules that actually
/// exercise the adversarial case — at least one wave holding two or more
/// buffers, one of which dies inside that same wave. If the strategy
/// changes shape, this pin fails before the property silently weakens.
#[test]
fn regression_seeds_still_cover_same_wave_death() {
    let seeds = Runner::new("wave_plans_never_overlap_same_wave_buffers")
        .regressions_file(regressions_path())
        .regression_seeds();
    assert!(seeds.len() >= 2, "regression file must persist at least two seeds");
    let strat = schedules();
    for seed in seeds {
        let schedule = strat.generate(&mut Rng::seed_from_u64(seed));
        let adversarial = schedule.iter().enumerate().any(|(w, born)| {
            let live_in_w = schedule
                .iter()
                .take(w + 1)
                .enumerate()
                .flat_map(|(b, bs)| bs.iter().map(move |&(_, e)| (b, e)))
                .filter(|&(b, e)| b + e >= w)
                .count();
            live_in_w >= 2 && born.iter().any(|&(_, e)| e == 0)
        });
        assert!(
            adversarial,
            "seed 0x{seed:016x} no longer decodes to a same-wave-death schedule: {schedule:?}"
        );
    }
}
