//! `gist-cli` — plan, inspect and export model memory layouts.
//!
//! ```text
//! gist-cli models
//! gist-cli plan vgg16 --batch 64 --mode fp16
//! gist-cli breakdown inception --batch 64
//! gist-cli stashes alexnet
//! gist-cli dot resnet50 > resnet50.dot
//! gist-cli train tiny-convnet --batch 4 --steps 3 --trace out.json
//! gist-cli train small-vgg --batch 4 --alloc arena --offload recompute
//! ```

use gist_core::{plan::stash_breakdown, Gist, GistConfig};
use gist_encodings::DprFormat;
use gist_graph::class::{baseline_inventory, WorkspaceMode};
use gist_graph::Graph;
use gist_memory::FootprintReport;
use std::process::ExitCode;

// The model table lives in gist-models (`MODEL_NAMES` / `by_name`) so the
// CLI, the serve scheduler and the test suites all agree on spellings.
const MODELS: &[&str] = gist_models::MODEL_NAMES;

fn build_model(name: &str, batch: usize) -> Option<Graph> {
    gist_models::by_name(name, batch)
}

fn parse_mode(mode: &str) -> Option<GistConfig> {
    Some(match mode {
        "baseline" => GistConfig::baseline(),
        "lossless" => GistConfig::lossless(),
        "fp16" => GistConfig::lossy(DprFormat::Fp16),
        "fp10" => GistConfig::lossy(DprFormat::Fp10),
        "fp8" => GistConfig::lossy(DprFormat::Fp8),
        _ => return None,
    })
}

struct Args {
    command: String,
    model: Option<String>,
    batch: usize,
    mode: String,
    dynamic: bool,
    optimized_software: bool,
    steps: usize,
    trace: Option<String>,
    alloc: gist_runtime::AllocPolicy,
    plan: gist_runtime::PlanGranularity,
    offload: gist_runtime::OffloadMode,
    replicas: usize,
    grad_codec: gist_dist::GradCodecPolicy,
    transport: Transport,
    rank: usize,
    peers: Vec<String>,
    spawn_local: usize,
    mem_budget: u64,
    jobs: Vec<String>,
    order: String,
}

/// Which medium carries cross-replica gradient traffic in `train`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transport {
    /// In-process replicas (`DistTrainer`), the default.
    InProcess,
    /// One OS process per rank over framed loopback/remote TCP
    /// (`gist_net::Tcp`), either as a worker (`--rank`/`--peers`) or as
    /// the `--spawn-local N` launcher.
    Tcp,
}

/// Parses a byte count with an optional `k`/`m` (KiB/MiB) suffix.
fn parse_bytes(v: &str) -> Option<u64> {
    let v = v.trim().to_ascii_lowercase();
    let (num, mult) = match v.strip_suffix(['k', 'm']) {
        Some(num) if v.ends_with('k') => (num, 1024u64),
        Some(num) => (num, 1024 * 1024),
        None => (v.as_str(), 1),
    };
    num.parse::<u64>().ok().filter(|&n| n > 0)?.checked_mul(mult)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().ok_or_else(usage)?,
        model: None,
        batch: 64,
        mode: "lossless".into(),
        dynamic: false,
        optimized_software: false,
        steps: 1,
        trace: None,
        alloc: gist_runtime::AllocPolicy::Heap,
        plan: gist_runtime::PlanGranularity::Event,
        offload: gist_runtime::OffloadMode::None,
        replicas: 1,
        grad_codec: gist_dist::GradCodecPolicy::Fixed(gist_dist::GradCodec::None),
        transport: Transport::InProcess,
        rank: 0,
        peers: Vec::new(),
        spawn_local: 0,
        mem_budget: 4 * 1024 * 1024,
        jobs: Vec::new(),
        order: "ascending".into(),
    };
    let mut it = argv[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--batch" => {
                let v = it.next().ok_or("--batch needs a value")?;
                args.batch = v.parse().map_err(|_| format!("bad batch size: {v}"))?;
            }
            "--mode" => {
                args.mode = it.next().ok_or("--mode needs a value")?.clone();
            }
            "--steps" => {
                let v = it.next().ok_or("--steps needs a value")?;
                args.steps = v.parse().map_err(|_| format!("bad step count: {v}"))?;
            }
            "--trace" => {
                args.trace = Some(it.next().ok_or("--trace needs a file path")?.clone());
            }
            "--alloc" => {
                args.alloc = match it.next().ok_or("--alloc needs heap or arena")?.as_str() {
                    "heap" => gist_runtime::AllocPolicy::Heap,
                    "arena" => gist_runtime::AllocPolicy::Arena,
                    other => return Err(format!("unknown alloc policy: {other}")),
                };
            }
            "--plan" => {
                let v = it.next().ok_or("--plan needs event or wave")?;
                args.plan = gist_runtime::PlanGranularity::parse(v)
                    .ok_or(format!("unknown plan granularity: {v} (try event|wave)"))?;
            }
            "--offload" => {
                use gist_runtime::{OffloadMode, SwapStrategy};
                args.offload = match it.next().ok_or("--offload needs a mechanism")?.as_str() {
                    "recompute" => OffloadMode::Recompute,
                    "swap" | "swap:vdnn" => OffloadMode::Swap(SwapStrategy::Vdnn),
                    "swap:naive" => OffloadMode::Swap(SwapStrategy::Naive),
                    "swap:cdma" => OffloadMode::Swap(SwapStrategy::Cdma { compression: 2.0 }),
                    other => {
                        return Err(format!(
                            "unknown offload mechanism: {other} \
                             (try recompute|swap|swap:naive|swap:vdnn|swap:cdma)"
                        ))
                    }
                };
            }
            "--replicas" => {
                let v = it.next().ok_or("--replicas needs a value")?;
                args.replicas = v.parse().map_err(|_| format!("bad replica count: {v}"))?;
                if args.replicas == 0 {
                    return Err("--replicas must be at least 1".into());
                }
            }
            "--grad-codec" => {
                let v = it.next().ok_or("--grad-codec needs a value")?;
                args.grad_codec = gist_dist::GradCodecPolicy::parse(v).ok_or(format!(
                    "unknown grad codec: {v} (try none|ssdc|dpr:16|dpr:10|dpr:8|auto)"
                ))?;
            }
            "--transport" => {
                args.transport = match it.next().ok_or("--transport needs a value")?.as_str() {
                    "inprocess" => Transport::InProcess,
                    "tcp" => Transport::Tcp,
                    other => return Err(format!("unknown transport: {other} (try inprocess|tcp)")),
                };
            }
            "--rank" => {
                let v = it.next().ok_or("--rank needs a value")?;
                args.rank = v.parse().map_err(|_| format!("bad rank: {v}"))?;
            }
            "--peers" => {
                let v = it.next().ok_or("--peers needs host:port,host:port,...")?;
                args.peers = v.split(',').map(|p| p.trim().to_string()).collect();
                if args.peers.iter().any(String::is_empty) {
                    return Err(format!("bad peer list: {v}"));
                }
            }
            "--spawn-local" => {
                let v = it.next().ok_or("--spawn-local needs a worker count")?;
                args.spawn_local = v.parse().map_err(|_| format!("bad worker count: {v}"))?;
                if args.spawn_local < 2 {
                    return Err("--spawn-local needs at least 2 workers".into());
                }
            }
            "--mem-budget" => {
                let v = it.next().ok_or("--mem-budget needs a value like 512k or 4m")?;
                args.mem_budget =
                    parse_bytes(v).ok_or(format!("bad memory budget: {v} (try 512k or 4m)"))?;
            }
            "--job" => {
                args.jobs
                    .push(it.next().ok_or("--job needs a spec like tiny-convnet,steps=2")?.clone());
            }
            "--order" => {
                args.order =
                    it.next().ok_or("--order needs ascending|descending|rotating")?.clone();
            }
            "--dynamic" => args.dynamic = true,
            "--optimized-software" => args.optimized_software = true,
            other if !other.starts_with("--") && args.model.is_none() => {
                args.model = Some(other.to_string());
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn usage() -> String {
    "usage: gist-cli <models|plan|breakdown|stashes|report|dot|trace|train|serve> [model] \
     [--batch N] [--mode baseline|lossless|fp16|fp10|fp8] [--dynamic] [--optimized-software] \
     [--steps N] [--trace out.json] [--alloc heap|arena] [--plan event|wave] \
     [--offload recompute|swap|swap:naive|swap:vdnn|swap:cdma] \
     [--replicas N] [--grad-codec none|ssdc|dpr:16|dpr:10|dpr:8|auto] \
     [--transport inprocess|tcp] [--rank R] [--peers host:port,...] [--spawn-local N] \
     [--mem-budget N[k|m]] [--job model,key=value,...]* [--order ascending|descending|rotating]"
        .to_string()
}

fn run(args: Args) -> Result<(), String> {
    if args.command == "models" {
        for m in MODELS {
            println!("{m}");
        }
        return Ok(());
    }
    if args.command == "serve" {
        return run_serve(&args);
    }
    let model_name = args.model.as_deref().ok_or_else(usage)?;
    let graph = build_model(model_name, args.batch)
        .ok_or_else(|| format!("unknown model {model_name}; try `gist-cli models`"))?;
    match args.command.as_str() {
        "plan" => {
            let mut config =
                parse_mode(&args.mode).ok_or_else(|| format!("unknown mode {}", args.mode))?;
            if args.dynamic {
                config = config.with_dynamic_allocation();
            }
            if args.optimized_software {
                config = config.with_optimized_software();
            }
            let plan = Gist::new(config).plan(&graph).map_err(|e| e.to_string())?;
            let gb = |b: usize| b as f64 / (1u64 << 30) as f64;
            println!("{} @ batch {} ({} mode)", plan.model, args.batch, args.mode);
            println!("  baseline : {:8.3} GB", gb(plan.baseline_bytes));
            println!("  optimized: {:8.3} GB", gb(plan.optimized_bytes));
            println!("  MFR      : {:8.2}x", plan.mfr());
            println!("\nencodings:");
            for a in &plan.transformed.assignments {
                println!(
                    "  {:<24} {:<10} -> {}",
                    graph.node(a.node).name,
                    a.kind.label(),
                    a.encoding.label()
                );
            }
        }
        "breakdown" => {
            let inv = baseline_inventory(&graph, WorkspaceMode::MemoryOptimal)
                .map_err(|e| e.to_string())?;
            print!("{}", FootprintReport::from_inventory(graph.name(), &inv).to_table());
        }
        "stashes" => {
            let b = stash_breakdown(&graph).map_err(|e| e.to_string())?;
            let gb = |v: usize| v as f64 / (1u64 << 30) as f64;
            println!("{} stashed feature maps @ batch {}", graph.name(), args.batch);
            println!("  ReLU-Pool (binarize): {:8.3} GB", gb(b.relu_pool));
            println!("  ReLU-Conv (ssdc)    : {:8.3} GB", gb(b.relu_conv));
            println!("  Others    (dpr)     : {:8.3} GB", gb(b.other));
            println!("  ReLU fraction       : {:7.1}%", 100.0 * b.relu_fraction());
        }
        "report" => {
            let config =
                parse_mode(&args.mode).ok_or_else(|| format!("unknown mode {}", args.mode))?;
            let plan = Gist::new(config).plan(&graph).map_err(|e| e.to_string())?;
            println!(
                "{:<24} {:<10} {:<9} {:>10} {:>10} {:>8}",
                "layer", "kind", "encoding", "fp32(KB)", "enc(KB)", "ratio"
            );
            for row in plan.encoding_report(&graph) {
                println!(
                    "{:<24} {:<10} {:<9} {:>10.1} {:>10.1} {:>7.1}x",
                    row.layer,
                    row.kind.label(),
                    row.encoding,
                    row.fp32_bytes as f64 / 1024.0,
                    row.encoded_bytes as f64 / 1024.0,
                    row.compression()
                );
            }
        }
        "dot" => print!("{}", gist_graph::dot::to_dot(&graph)),
        "train" => {
            let mode = if args.mode == "baseline" {
                gist_runtime::ExecMode::Baseline
            } else {
                let config =
                    parse_mode(&args.mode).ok_or_else(|| format!("unknown mode {}", args.mode))?;
                gist_runtime::ExecMode::Gist(config)
            };
            if args.transport == Transport::Tcp {
                if args.spawn_local > 0 {
                    run_spawn_local(&args)?;
                } else {
                    run_train_tcp(graph, mode, &args)?;
                }
            } else if args.replicas > 1
                || args.grad_codec != gist_dist::GradCodecPolicy::Fixed(gist_dist::GradCodec::None)
            {
                run_train_dist(graph, mode, &args)?;
            } else {
                run_train(graph, mode, &args)?;
            }
        }
        "trace" => {
            let mut config =
                parse_mode(&args.mode).ok_or_else(|| format!("unknown mode {}", args.mode))?;
            if args.dynamic {
                config = config.with_dynamic_allocation();
            }
            let t =
                gist_core::ScheduleBuilder::new(config).build(&graph).map_err(|e| e.to_string())?;
            print!("{}", gist_memory::to_chrome_trace(&t.inventory));
        }
        other => return Err(format!("unknown command {other}\n{}", usage())),
    }
    Ok(())
}

/// The scripted job mix `serve` runs when no `--job` is given: four small
/// jobs spanning modes, alloc policies, replica counts and grad codecs.
const DEFAULT_JOB_MIX: &[&str] = &[
    "tiny-convnet,name=j0,steps=3,plan=wave",
    "tiny-classic,name=j1,steps=2,mode=fp8",
    "small-vgg,name=j2,steps=2,alloc=heap",
    "tiny-convnet,name=j3,steps=2,replicas=2,codec=ssdc",
];

/// Runs a job mix through the gist-serve scheduler under `--mem-budget`,
/// printing per-job outcomes plus the budget-oracle verdict.
fn run_serve(args: &Args) -> Result<(), String> {
    use gist_serve::{JobSpec, ServeConfig, Server, StepOrder};
    // Garbage interleave spellings warn and fall back (workspace policy).
    let (order, warning) = gist_core::parse_or_warn(
        "gist-cli",
        "--order",
        Some(&args.order),
        "ascending|descending|rotating",
        "ascending",
        StepOrder::parse,
        || StepOrder::Ascending,
    );
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    let mut config = ServeConfig::new(args.mem_budget);
    config.order = order;

    let specs: Vec<&str> = if args.jobs.is_empty() {
        DEFAULT_JOB_MIX.to_vec()
    } else {
        args.jobs.iter().map(String::as_str).collect()
    };
    let mut server = Server::new(config);
    for raw in &specs {
        let (spec, warnings) = JobSpec::parse(raw).map_err(|e| e.to_string())?;
        for w in warnings {
            eprintln!("{w}");
        }
        let name = spec.name.clone();
        let id = server.submit(spec).map_err(|e| e.to_string())?;
        println!(
            "job {id}: {name} admitted to queue, slab lease {:.1} KB",
            server.lease_bytes(id) as f64 / 1024.0
        );
    }

    let report = server.run().map_err(|e| e.to_string())?;
    for job in &report.jobs {
        println!(
            "job {}: {} ({}) {} step(s), {} park(s), queued {} tick(s), \
             finished tick {}, final loss {:.4}",
            job.job,
            job.name,
            job.model,
            job.steps,
            job.parks,
            job.queue_ticks,
            job.completed_tick,
            job.loss_bits.last().map_or(f32::NAN, |&b| f32::from_bits(b)),
        );
    }
    let done = report.jobs.iter().filter(|j| j.steps == j.loss_bits.len()).count();
    println!(
        "{done}/{} jobs completed in {} ticks ({} admission(s), {} park(s), \
         mean queue latency {:.1} ticks)",
        report.jobs.len(),
        report.ticks,
        report.admissions,
        report.parks,
        report.mean_queue_ticks()
    );
    if report.parks > 0 {
        println!(
            "parked state peak: {:.1} KB host-side (SSDC wire)",
            report.parked_wire_bytes_peak as f64 / 1024.0
        );
    }
    if !report.all_completed() {
        return Err("some jobs did not complete".into());
    }
    println!(
        "budget oracle ok: max live {} B <= budget {} B",
        report.max_live_bytes, report.budget_bytes
    );
    Ok(())
}

/// Runs `--steps` training steps on synthetic data, optionally recording an
/// execution trace (`--trace out.json`, chrome://tracing format) and
/// printing the aggregate counters report.
/// FNV-1a over each step's loss bits plus every trained parameter bit —
/// the fingerprint shape the equivalence gates pin, printed by `train` so
/// `scripts/verify.sh` can demand bitwise-identical training across plan
/// granularities and thread counts.
fn train_fingerprint(loss_bits: &[u32], exec: &gist_runtime::Executor) -> u64 {
    use gist_runtime::params::NodeParams;
    let mut words: Vec<u32> = loss_bits.to_vec();
    for i in 0..exec.graph().len() {
        match exec.params.get(i) {
            Some(NodeParams::Conv { weight, bias }) | Some(NodeParams::Linear { weight, bias }) => {
                words.extend(weight.data().iter().map(|v| v.to_bits()));
                if let Some(b) = bias {
                    words.extend(b.data().iter().map(|v| v.to_bits()));
                }
            }
            Some(NodeParams::BatchNorm { gamma, beta }) => {
                words.extend(gamma.data().iter().map(|v| v.to_bits()));
                words.extend(beta.data().iter().map(|v| v.to_bits()));
            }
            None => {}
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

fn run_train(graph: Graph, mode: gist_runtime::ExecMode, args: &Args) -> Result<(), String> {
    let shapes = graph.infer_shapes().map_err(|e| e.to_string())?;
    let loss = graph
        .nodes()
        .iter()
        .find(|n| matches!(n.op, gist_graph::OpKind::SoftmaxLoss))
        .ok_or("model has no loss head")?;
    let classes = shapes[loss.inputs[0].index()].as_matrix().1;
    let input = shapes[0];
    let mut ds = if input.c() == 3 {
        gist_runtime::SyntheticImages::rgb(classes, input.h(), 0.3, 42)
    } else {
        gist_runtime::SyntheticImages::new(classes, input.h(), 0.3, 42)
    };
    let mut exec = gist_runtime::Executor::new_with_granularity(
        graph,
        mode,
        7,
        args.alloc,
        args.offload,
        args.plan,
    )
    .map_err(|e| e.to_string())?;
    if let Some(capacity) = exec.arena_capacity_bytes() {
        println!(
            "arena slab: {:.1} KB pre-planned ({} granularity)",
            capacity as f64 / 1024.0,
            exec.plan_granularity()
        );
    }
    if let Some(plan) = exec.offload_plan() {
        let r = gist_offload::simulate(exec.graph(), plan, &gist_perf::GpuModel::titan_x())
            .map_err(|e| e.to_string())?;
        println!(
            "offload: {} segment(s), {} swap transfer(s), {:.1} KB host-pinned",
            plan.segments.len(),
            r.transfers.len(),
            exec.host_pinned_bytes() as f64 / 1024.0
        );
        println!(
            "simulated step: {:.3} ms total, {:.3} ms stalled, {:.1}% overhead (Titan X clock)",
            r.total_s * 1e3,
            r.stall_s * 1e3,
            r.overhead_pct()
        );
    }
    let sink = gist_obs::TraceSink::new();
    let null = gist_obs::NullRecorder;
    let rec: &dyn gist_obs::Recorder = if args.trace.is_some() { &sink } else { &null };
    let mut loss_bits = Vec::with_capacity(args.steps);
    for step in 0..args.steps {
        let (x, y) = ds.minibatch(args.batch);
        let stats = exec.step_traced(&x, &y, 0.05, rec).map_err(|e| e.to_string())?;
        loss_bits.push(stats.loss.to_bits());
        println!(
            "step {:>3}: loss {:.4}  acc {:5.1}%  peak live {:.1} KB  stash {:.1} KB",
            step,
            stats.loss,
            100.0 * stats.accuracy(),
            stats.peak_live_bytes as f64 / 1024.0,
            stats.stash_bytes as f64 / 1024.0
        );
    }
    println!("train fingerprint: 0x{:016x}", train_fingerprint(&loss_bits, &exec));
    if let Some(path) = &args.trace {
        let events = sink.take();
        std::fs::write(path, gist_obs::export_chrome(&events)).map_err(|e| e.to_string())?;
        println!("wrote {} trace events to {path}", events.len());
        print!("{}", gist_obs::CountersReport::from_events(&events).to_table());
    }
    Ok(())
}

/// Runs `--steps` distributed training steps: `--replicas` lockstep model
/// replicas over `gist_dist::DEFAULT_SHARDS` micro-batch shards of
/// `--batch` images each, all-reducing gradients through the fixed tree
/// with `--grad-codec` on every transfer, and pricing the observed wire
/// bytes on the virtual-clock link engine.
fn run_train_dist(graph: Graph, mode: gist_runtime::ExecMode, args: &Args) -> Result<(), String> {
    use gist_dist::{DistTrainer, DEFAULT_SHARDS};
    let shards = DEFAULT_SHARDS;
    if shards % args.replicas != 0 {
        return Err(format!("--replicas must divide {shards} (got {})", args.replicas));
    }
    let shapes = graph.infer_shapes().map_err(|e| e.to_string())?;
    let loss = graph
        .nodes()
        .iter()
        .find(|n| matches!(n.op, gist_graph::OpKind::SoftmaxLoss))
        .ok_or("model has no loss head")?;
    let classes = shapes[loss.inputs[0].index()].as_matrix().1;
    let input = shapes[0];
    let mut ds = if input.c() == 3 {
        gist_runtime::SyntheticImages::rgb(classes, input.h(), 0.3, 42)
    } else {
        gist_runtime::SyntheticImages::new(classes, input.h(), 0.3, 42)
    };
    let (per, total) = gist_runtime::predicted_replica_slab_bytes_granular(
        &graph,
        &mode,
        args.replicas,
        args.plan,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "replica slab: {:.1} KB per replica, {:.1} KB across {} replica(s) ({} granularity)",
        per as f64 / 1024.0,
        total as f64 / 1024.0,
        args.replicas,
        args.plan
    );
    let mut trainer = DistTrainer::new_with_policy(args.replicas, shards, args.grad_codec, || {
        gist_runtime::Executor::new_with_granularity(
            graph.clone(),
            mode.clone(),
            7,
            args.alloc,
            gist_runtime::OffloadMode::None,
            args.plan,
        )
    })
    .map_err(|e| e.to_string())?;
    let gpu = gist_perf::GpuModel::titan_x();
    let mut loss_bits = Vec::with_capacity(args.steps);
    for step in 0..args.steps {
        let mut images = Vec::with_capacity(shards);
        let mut labels = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (x, y) = ds.minibatch(args.batch);
            images.push(x);
            labels.push(y);
        }
        let rep = trainer.step(&images, &labels, 0.05).map_err(|e| e.to_string())?;
        loss_bits.push(rep.loss.to_bits());
        let priced = trainer.price(&rep, &gpu);
        println!(
            "step {:>3}: loss {:.4}  acc {:5.1}%  wire {:.1} KB ({} codec, dense {:.1} KB)  \
             all-reduce {:.3} ms",
            step,
            rep.loss,
            100.0 * (rep.correct as f64 / rep.batch as f64),
            priced.bytes_on_wire as f64 / 1024.0,
            trainer.policy().label(),
            rep.dense_grad_bytes as f64 / 1024.0,
            priced.total_s * 1e3
        );
    }
    println!("train fingerprint: 0x{:016x}", train_fingerprint(&loss_bits, trainer.replica(0)));
    Ok(())
}

/// One rank of a multi-process TCP training job: rendezvous with the
/// `--peers` roster, then run the exact global steps the in-process
/// distributed path runs — the printed fingerprint must match it bitwise
/// (the `verify.sh` loopback smoke asserts exactly that).
fn run_train_tcp(graph: Graph, mode: gist_runtime::ExecMode, args: &Args) -> Result<(), String> {
    use gist_net::{NetConfig, NetTrainer, Tcp};
    let shards = gist_dist::DEFAULT_SHARDS;
    let world = args.peers.len();
    if world < 2 {
        return Err("--transport tcp needs --peers with at least two host:port entries \
             (or --spawn-local N to fork a loopback world)"
            .into());
    }
    if args.rank >= world {
        return Err(format!("--rank {} outside the world of {world} peers", args.rank));
    }
    if shards % world != 0 {
        return Err(format!("the peer count must divide {shards} (got {world})"));
    }
    let shapes = graph.infer_shapes().map_err(|e| e.to_string())?;
    let loss = graph
        .nodes()
        .iter()
        .find(|n| matches!(n.op, gist_graph::OpKind::SoftmaxLoss))
        .ok_or("model has no loss head")?;
    let classes = shapes[loss.inputs[0].index()].as_matrix().1;
    let input = shapes[0];
    let mut ds = if input.c() == 3 {
        gist_runtime::SyntheticImages::rgb(classes, input.h(), 0.3, 42)
    } else {
        gist_runtime::SyntheticImages::new(classes, input.h(), 0.3, 42)
    };
    // GIST_NET_TIMEOUT_MS garbage warns and falls back (workspace policy).
    let config = NetConfig::from_env();
    let tcp =
        Tcp::rendezvous(args.rank, &args.peers, shards, args.grad_codec.meta_id() as u32, &config)
            .map_err(|e| e.to_string())?;
    let mut trainer = NetTrainer::new(tcp, shards, args.grad_codec, || {
        gist_runtime::Executor::new_with_granularity(
            graph.clone(),
            mode.clone(),
            7,
            args.alloc,
            gist_runtime::OffloadMode::None,
            args.plan,
        )
    })
    .map_err(|e| e.to_string())?;
    println!(
        "rank {}/{world}: rendezvous complete ({} codec, {shards} shards)",
        args.rank,
        args.grad_codec.label()
    );
    let mut loss_bits = Vec::with_capacity(args.steps);
    for step in 0..args.steps {
        let mut images = Vec::with_capacity(shards);
        let mut labels = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (x, y) = ds.minibatch(args.batch);
            images.push(x);
            labels.push(y);
        }
        let rep = trainer.step(&images, &labels, 0.05).map_err(|e| e.to_string())?;
        loss_bits.push(rep.loss.to_bits());
        println!(
            "step {:>3}: loss {:.4}  acc {:5.1}%  observed {:.1} KB on the wire \
             (priced {:.1} KB on this rank's edges, dense {:.1} KB)",
            step,
            rep.loss,
            100.0 * (rep.correct as f64 / rep.batch as f64),
            rep.observed_wire_bytes as f64 / 1024.0,
            (rep.reduce_bytes + rep.broadcast_bytes) as f64 / 1024.0,
            rep.dense_grad_bytes as f64 / 1024.0,
        );
    }
    println!("train fingerprint: 0x{:016x}", train_fingerprint(&loss_bits, trainer.exec()));
    if let Some(path) = &args.trace {
        let events = trainer.take_events();
        std::fs::write(path, gist_obs::export_chrome(&events)).map_err(|e| e.to_string())?;
        println!("wrote {} net trace events to {path}", events.len());
    }
    Ok(())
}

/// Loopback launcher: forks `--spawn-local N` worker processes of this
/// same binary (one rank each on freshly reserved loopback ports), relays
/// their output with a `[rank r]` prefix, and requires every rank to print
/// the identical train fingerprint before printing it as its own.
fn run_spawn_local(args: &Args) -> Result<(), String> {
    let n = args.spawn_local;
    if args.replicas > 1 && args.replicas != n {
        return Err(format!(
            "--replicas {} conflicts with --spawn-local {n} (the worker count is the \
             replica count in tcp mode)",
            args.replicas
        ));
    }
    let model = args.model.clone().ok_or_else(usage)?;
    let peers: Vec<String> = (0..n)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0")
                .map_err(|e| format!("reserve loopback port: {e}"))
                .map(|l| format!("127.0.0.1:{}", l.local_addr().expect("local addr").port()))
        })
        .collect::<Result<_, _>>()?;
    let exe = std::env::current_exe().map_err(|e| format!("locate own binary: {e}"))?;
    let peer_list = peers.join(",");
    let mut children = Vec::with_capacity(n);
    for rank in 0..n {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("train")
            .arg(&model)
            .args(["--batch", &args.batch.to_string()])
            .args(["--steps", &args.steps.to_string()])
            .args(["--mode", &args.mode])
            .args([
                "--alloc",
                if args.alloc == gist_runtime::AllocPolicy::Arena { "arena" } else { "heap" },
            ])
            .args(["--plan", args.plan.label()])
            .args(["--grad-codec", args.grad_codec.label()])
            .args(["--transport", "tcp"])
            .args(["--rank", &rank.to_string()])
            .args(["--peers", &peer_list])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped());
        if let Some(path) = &args.trace {
            cmd.args(["--trace", &format!("{path}.rank{rank}")]);
        }
        children.push(cmd.spawn().map_err(|e| format!("spawn rank {rank}: {e}"))?);
    }
    let mut fingerprints = Vec::with_capacity(n);
    let mut failed = false;
    for (rank, child) in children.into_iter().enumerate() {
        let out = child.wait_with_output().map_err(|e| format!("wait for rank {rank}: {e}"))?;
        for line in String::from_utf8_lossy(&out.stdout).lines() {
            println!("[rank {rank}] {line}");
            if let Some(fp) = line.strip_prefix("train fingerprint: ") {
                fingerprints.push(fp.to_string());
            }
        }
        for line in String::from_utf8_lossy(&out.stderr).lines() {
            eprintln!("[rank {rank}] {line}");
        }
        if !out.status.success() {
            eprintln!("[rank {rank}] exited with {}", out.status);
            failed = true;
        }
    }
    if failed {
        return Err("a worker rank failed".into());
    }
    if fingerprints.len() != n {
        return Err(format!("only {} of {n} ranks printed a fingerprint", fingerprints.len()));
    }
    if fingerprints.iter().any(|fp| fp != &fingerprints[0]) {
        return Err(format!("ranks disagree on the train fingerprint: {fingerprints:?}"));
    }
    println!("train fingerprint: {}", fingerprints[0]);
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&argv).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let a =
            parse_args(&args(&["plan", "vgg16", "--batch", "32", "--mode", "fp8", "--dynamic"]))
                .unwrap();
        assert_eq!(a.command, "plan");
        assert_eq!(a.model.as_deref(), Some("vgg16"));
        assert_eq!(a.batch, 32);
        assert_eq!(a.mode, "fp8");
        assert!(a.dynamic && !a.optimized_software);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["plan", "--batch"])).is_err());
        assert!(parse_args(&args(&["plan", "--bogus"])).is_err());
        assert!(run(parse_args(&args(&["plan", "nosuchmodel"])).unwrap()).is_err());
        assert!(run(parse_args(&args(&["frobnicate", "vgg16"])).unwrap()).is_err());
    }

    #[test]
    fn every_listed_model_builds() {
        for m in MODELS {
            assert!(build_model(m, 2).is_some(), "{m}");
        }
        assert!(build_model("bogus", 2).is_none());
    }

    #[test]
    fn all_commands_run_on_a_small_model() {
        for cmd in ["plan", "breakdown", "stashes", "report", "dot", "trace"] {
            let a = parse_args(&args(&[cmd, "alexnet", "--batch", "2"])).unwrap();
            run(a).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        }
    }

    #[test]
    fn train_writes_a_parsable_chrome_trace() {
        let path = std::env::temp_dir().join("gist_cli_train_trace_test.json");
        let path_str = path.to_str().unwrap().to_string();
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "4",
            "--steps",
            "2",
            "--trace",
            &path_str,
        ]))
        .unwrap();
        assert_eq!((a.steps, a.trace.as_deref()), (2, Some(path_str.as_str())));
        run(a).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = gist_obs::parse_chrome(&text).unwrap();
        assert!(!events.is_empty());
        // Two traced steps produce a well-formed memory stream.
        let mut acc = gist_obs::MemoryAccountant::new();
        acc.fold_all(&events).unwrap();
        assert!(acc.peak_bytes() > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn train_runs_without_tracing() {
        let a =
            parse_args(&args(&["train", "tiny-classic", "--batch", "2", "--mode", "fp8"])).unwrap();
        run(a).unwrap();
    }

    #[test]
    fn parses_offload_and_trains_offloaded() {
        use gist_runtime::{OffloadMode, SwapStrategy};
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "2",
            "--alloc",
            "arena",
            "--offload",
            "recompute",
        ]))
        .unwrap();
        assert_eq!(a.offload, OffloadMode::Recompute);
        run(a).unwrap();
        for (flag, want) in [
            ("swap", OffloadMode::Swap(SwapStrategy::Vdnn)),
            ("swap:naive", OffloadMode::Swap(SwapStrategy::Naive)),
            ("swap:vdnn", OffloadMode::Swap(SwapStrategy::Vdnn)),
        ] {
            let a =
                parse_args(&args(&["train", "tiny-convnet", "--batch", "2", "--offload", flag]))
                    .unwrap();
            assert_eq!(a.offload, want, "{flag}");
            run(a).unwrap();
        }
        assert!(parse_args(&args(&["train", "tiny-convnet", "--offload", "teleport"])).is_err());
        assert!(parse_args(&args(&["train", "tiny-convnet", "--offload"])).is_err());
    }

    #[test]
    fn parses_replicas_and_grad_codec_and_trains_distributed() {
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "2",
            "--replicas",
            "2",
            "--grad-codec",
            "ssdc",
        ]))
        .unwrap();
        assert_eq!(a.replicas, 2);
        assert_eq!(a.grad_codec, gist_dist::GradCodecPolicy::Fixed(gist_dist::GradCodec::Ssdc));
        run(a).unwrap();
        // A codec alone routes through the distributed path too.
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "2",
            "--grad-codec",
            "dpr:8",
            "--alloc",
            "arena",
        ]))
        .unwrap();
        assert_eq!(a.replicas, 1);
        run(a).unwrap();
        assert!(parse_args(&args(&["train", "tiny-convnet", "--replicas", "0"])).is_err());
        assert!(parse_args(&args(&["train", "tiny-convnet", "--grad-codec", "zip"])).is_err());
        // 3 does not divide the 8 fixed shards.
        let a = parse_args(&args(&["train", "tiny-convnet", "--batch", "2", "--replicas", "3"]))
            .unwrap();
        assert!(run(a).is_err());
    }

    #[test]
    fn parses_auto_codec_and_trains_through_the_dist_path() {
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "2",
            "--replicas",
            "2",
            "--grad-codec",
            "auto",
        ]))
        .unwrap();
        assert_eq!(a.grad_codec, gist_dist::GradCodecPolicy::Auto);
        run(a).unwrap();
        // Auto alone (replicas 1) still routes through the dist path.
        let a =
            parse_args(&args(&["train", "tiny-convnet", "--batch", "2", "--grad-codec", "auto"]))
                .unwrap();
        run(a).unwrap();
    }

    #[test]
    fn parses_transport_flags() {
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--transport",
            "tcp",
            "--rank",
            "1",
            "--peers",
            "127.0.0.1:5000,127.0.0.1:5001",
        ]))
        .unwrap();
        assert_eq!(a.transport, Transport::Tcp);
        assert_eq!(a.rank, 1);
        assert_eq!(a.peers, vec!["127.0.0.1:5000".to_string(), "127.0.0.1:5001".to_string()]);
        let a = parse_args(&args(&["train", "tiny-convnet", "--spawn-local", "2"])).unwrap();
        assert_eq!(a.spawn_local, 2);
        assert!(parse_args(&args(&["train", "tiny-convnet", "--transport", "carrier"])).is_err());
        assert!(parse_args(&args(&["train", "tiny-convnet", "--spawn-local", "1"])).is_err());
        assert!(parse_args(&args(&["train", "tiny-convnet", "--peers", "a,,b"])).is_err());
        // A tcp worker without a usable roster or rank fails by name.
        let a = parse_args(&args(&["train", "tiny-convnet", "--transport", "tcp"])).unwrap();
        assert!(run(a).unwrap_err().contains("--peers"));
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--transport",
            "tcp",
            "--rank",
            "5",
            "--peers",
            "127.0.0.1:5000,127.0.0.1:5001",
        ]))
        .unwrap();
        assert!(run(a).unwrap_err().contains("--rank 5"));
    }

    #[test]
    fn tcp_workers_train_in_lockstep_over_loopback() {
        // Two in-test "processes" (threads running the full CLI path) over
        // real loopback sockets; the per-rank fingerprints are asserted
        // identical by the printed-output contract elsewhere — here both
        // runs completing proves rendezvous + framed lockstep end to end.
        let peers: Vec<String> = (0..2)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                format!("127.0.0.1:{}", l.local_addr().unwrap().port())
            })
            .collect();
        let roster = peers.join(",");
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let roster = roster.clone();
                std::thread::spawn(move || {
                    let a = parse_args(&args(&[
                        "train",
                        "tiny-convnet",
                        "--batch",
                        "2",
                        "--steps",
                        "1",
                        "--transport",
                        "tcp",
                        "--grad-codec",
                        "ssdc",
                        "--rank",
                        &rank.to_string(),
                        "--peers",
                        &roster,
                    ]))
                    .unwrap();
                    run(a)
                })
            })
            .collect();
        for (rank, h) in handles.into_iter().enumerate() {
            h.join().unwrap().unwrap_or_else(|e| panic!("rank {rank}: {e}"));
        }
    }

    #[test]
    fn parse_bytes_understands_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("512k"), Some(512 * 1024));
        assert_eq!(parse_bytes("4M"), Some(4 * 1024 * 1024));
        for bad in ["", "0", "-1", "4g", "lots", "k"] {
            assert_eq!(parse_bytes(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn serve_runs_the_default_mix_under_the_default_budget() {
        let a = parse_args(&args(&["serve"])).unwrap();
        assert_eq!(a.mem_budget, 4 * 1024 * 1024);
        assert!(a.jobs.is_empty());
        run(a).unwrap();
    }

    #[test]
    fn serve_parses_budget_and_jobs_and_completes_a_tight_mix() {
        let a = parse_args(&args(&[
            "serve",
            "--mem-budget",
            "768k",
            "--order",
            "rotating",
            "--job",
            "tiny-convnet,steps=2",
            "--job",
            "tiny-classic,steps=2,mode=fp8",
        ]))
        .unwrap();
        assert_eq!(a.mem_budget, 768 * 1024);
        assert_eq!(a.jobs.len(), 2);
        run(a).unwrap();
    }

    #[test]
    fn serve_rejects_bad_budget_and_unknown_job_model() {
        assert!(parse_args(&args(&["serve", "--mem-budget", "lots"])).is_err());
        assert!(parse_args(&args(&["serve", "--mem-budget"])).is_err());
        assert!(parse_args(&args(&["serve", "--job"])).is_err());
        // Unknown model in a job spec is a hard error at submit time...
        let a = parse_args(&args(&["serve", "--job", "warpdrive,steps=1"])).unwrap();
        assert!(run(a).is_err());
        // ...and a job whose lease alone exceeds the budget is rejected.
        let a =
            parse_args(&args(&["serve", "--mem-budget", "1k", "--job", "tiny-convnet,steps=1"]))
                .unwrap();
        assert!(run(a).is_err());
    }

    #[test]
    fn serve_garbage_order_and_values_fall_back_instead_of_failing() {
        // Garbage --order and garbage known-key values warn + fall back, so
        // the run still completes (workspace parse_or_warn policy).
        let a = parse_args(&args(&[
            "serve",
            "--order",
            "sideways",
            "--job",
            "tiny-convnet,steps=backwards,codec=zip",
        ]))
        .unwrap();
        run(a).unwrap();
    }

    #[test]
    fn parses_plan_granularity_and_trains_wave_arena() {
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "2",
            "--alloc",
            "arena",
            "--plan",
            "wave",
        ]))
        .unwrap();
        assert_eq!(a.plan, gist_runtime::PlanGranularity::Wave);
        run(a).unwrap();
        // Wave planning composes with the distributed path (lease pricing
        // and replica construction both take the granularity).
        let a = parse_args(&args(&[
            "train",
            "tiny-convnet",
            "--batch",
            "2",
            "--replicas",
            "2",
            "--alloc",
            "arena",
            "--plan",
            "wave",
        ]))
        .unwrap();
        run(a).unwrap();
        // Unlike serve's key=value grammar, a bad --plan is a hard error.
        assert!(parse_args(&args(&["train", "tiny-convnet", "--plan", "tick"])).is_err());
        assert!(parse_args(&args(&["train", "tiny-convnet", "--plan"])).is_err());
    }

    #[test]
    fn parses_alloc_policy_and_trains_in_arena() {
        let a = parse_args(&args(&["train", "tiny-convnet", "--batch", "2", "--alloc", "arena"]))
            .unwrap();
        assert_eq!(a.alloc, gist_runtime::AllocPolicy::Arena);
        run(a).unwrap();
        assert!(parse_args(&args(&["train", "tiny-convnet", "--alloc", "stack"])).is_err());
    }
}
