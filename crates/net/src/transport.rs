//! The [`Transport`] seam and its two implementations.
//!
//! [`InProcess`] is a channel mesh inside one process: every message still
//! rides the full frame encode/decode path, so the byte layer is exercised
//! even when no socket exists — and the equivalence tests can compare it
//! against [`Tcp`] knowing the only difference is the copy mechanism.
//!
//! [`Tcp`] is real `std::net` sockets with a deterministic rendezvous:
//! every rank binds its own address from the shared peer list *first*,
//! then dials every lower rank with a bounded, deterministic retry/backoff
//! schedule ([`backoff_ms`]) and accepts every higher rank, exchanging
//! [`Msg::Hello`] both ways so a misassembled fleet (wrong world, wrong
//! shard count, mismatched codec policy) fails by name instead of
//! deadlocking. Per-read/-write socket timeouts come from
//! [`NetConfig`] (`GIST_NET_TIMEOUT_MS`).

use crate::frame::{read_frame, write_frame, Msg, NetError};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// How messages move between ranks. Implementations must deliver frames
/// per peer pair in FIFO order; the trainer's exchange schedule is
/// deterministic, so FIFO is all the ordering it needs.
pub trait Transport {
    /// This process's rank.
    fn rank(&self) -> usize;
    /// Total rank count.
    fn world(&self) -> usize;
    /// Sends one message to `peer`. Returns the observed bytes that
    /// crossed the transport (framing included).
    ///
    /// # Errors
    ///
    /// A typed [`NetError`]; the caller must abort the step (no partial
    /// gradient application).
    fn send(&mut self, peer: usize, msg: &Msg) -> Result<u64, NetError>;
    /// Receives the next message from `peer` (blocking, bounded by the
    /// transport's timeout). Returns the message and its observed bytes.
    ///
    /// # Errors
    ///
    /// A typed [`NetError`]; the caller must abort the step.
    fn recv(&mut self, peer: usize) -> Result<(Msg, u64), NetError>;
}

// ---------------------------------------------------------------------------
// In-process mesh
// ---------------------------------------------------------------------------

/// One rank's endpoint of an in-process channel mesh.
///
/// Frames are encoded to bytes on send and parsed on receive — the same
/// code path TCP uses — so in-process and multi-process runs differ only
/// in who carries the bytes.
#[derive(Debug)]
pub struct InProcess {
    rank: usize,
    world: usize,
    timeout: Duration,
    tx: Vec<Option<Sender<Vec<u8>>>>,
    rx: Vec<Option<Receiver<Vec<u8>>>>,
}

impl InProcess {
    /// Builds a fully connected mesh of `world` endpoints (index = rank).
    /// Endpoints are `Send`, so each can move to its own thread.
    #[must_use]
    pub fn mesh(world: usize) -> Vec<InProcess> {
        let mut nodes: Vec<InProcess> = (0..world)
            .map(|rank| InProcess {
                rank,
                world,
                timeout: Duration::from_secs(30),
                tx: (0..world).map(|_| None).collect(),
                rx: (0..world).map(|_| None).collect(),
            })
            .collect();
        for a in 0..world {
            for b in 0..world {
                if a == b {
                    continue;
                }
                let (tx, rx) = mpsc::channel();
                nodes[a].tx[b] = Some(tx);
                nodes[b].rx[a] = Some(rx);
            }
        }
        nodes
    }

    fn check_peer(&self, peer: usize) -> Result<(), NetError> {
        if peer >= self.world || peer == self.rank {
            return Err(NetError::Protocol(format!(
                "rank {} cannot address peer {peer} (world {})",
                self.rank, self.world
            )));
        }
        Ok(())
    }
}

impl Transport for InProcess {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    fn send(&mut self, peer: usize, msg: &Msg) -> Result<u64, NetError> {
        self.check_peer(peer)?;
        let frame = msg.to_frame();
        let n = frame.len() as u64;
        let tx = self.tx[peer].as_ref().expect("mesh channel");
        tx.send(frame).map_err(|_| NetError::Disconnected { peer: peer as u32 })?;
        Ok(n)
    }

    fn recv(&mut self, peer: usize) -> Result<(Msg, u64), NetError> {
        self.check_peer(peer)?;
        let rx = self.rx[peer].as_ref().expect("mesh channel");
        let frame = rx.recv_timeout(self.timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => {
                NetError::Io { peer: peer as u32, op: "read", detail: "timed out".into() }
            }
            RecvTimeoutError::Disconnected => NetError::Disconnected { peer: peer as u32 },
        })?;
        let n = frame.len() as u64;
        Ok((Msg::from_frame(&frame)?, n))
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// Socket-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Budget for the whole rendezvous *and* the per-read/-write socket
    /// timeout once connected.
    pub timeout: Duration,
}

impl NetConfig {
    /// Default `GIST_NET_TIMEOUT_MS` when the variable is unset.
    pub const DEFAULT_TIMEOUT_MS: u64 = 10_000;

    /// Resolves a raw `GIST_NET_TIMEOUT_MS` value through the workspace
    /// [`gist_par::parse_or_warn`] policy: a positive integer is honoured,
    /// anything else falls back to [`Self::DEFAULT_TIMEOUT_MS`] (with a
    /// warning when a value was present but malformed). Split from
    /// [`Self::from_env`] so the policy is testable without touching the
    /// process environment.
    #[must_use]
    pub fn resolve(raw: Option<&str>) -> (Self, Option<String>) {
        let (ms, warning) = gist_par::parse_or_warn(
            "gist-net",
            "GIST_NET_TIMEOUT_MS",
            raw,
            "a positive integer (milliseconds)",
            "10000",
            |s| s.trim().parse::<u64>().ok().filter(|&n| n >= 1),
            || Self::DEFAULT_TIMEOUT_MS,
        );
        (NetConfig { timeout: Duration::from_millis(ms) }, warning)
    }

    /// Timeout from the environment (`GIST_NET_TIMEOUT_MS`), warning on
    /// stderr when the variable is set but malformed.
    #[must_use]
    pub fn from_env() -> Self {
        let raw = std::env::var("GIST_NET_TIMEOUT_MS").ok();
        let (config, warning) = Self::resolve(raw.as_deref());
        if let Some(w) = warning {
            eprintln!("{w}");
        }
        config
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { timeout: Duration::from_millis(Self::DEFAULT_TIMEOUT_MS) }
    }
}

/// The deterministic rendezvous backoff schedule: sleep this many
/// milliseconds after failed attempt `attempt` (0-based). Pure function of
/// the attempt index — doubling from 5 ms, capped at 200 ms — so retry
/// behaviour is reproducible and testable without clocks.
#[must_use]
pub fn backoff_ms(attempt: u32) -> u64 {
    (5u64 << attempt.min(6)).min(200)
}

/// One rank's endpoint of a TCP mesh over `std::net`.
#[derive(Debug)]
pub struct Tcp {
    rank: usize,
    streams: Vec<Option<TcpStream>>,
}

impl Tcp {
    /// Deterministic rendezvous over a shared peer list (`peers[r]` is the
    /// listen address of rank `r`).
    ///
    /// Every rank binds its own address first, so no connect can win a
    /// race against a listener that does not exist yet; rank `r` then
    /// dials every lower rank (bounded retry with the [`backoff_ms`]
    /// schedule, budgeted by `config.timeout`) and accepts every higher
    /// rank. Both directions exchange [`Msg::Hello`] and validate rank,
    /// world, shard count and codec policy.
    ///
    /// # Errors
    ///
    /// [`NetError::Rendezvous`] naming the missing rank when the budget
    /// runs out; [`NetError::Protocol`] on a Hello mismatch;
    /// [`NetError::Io`]/[`NetError::Config`] on socket/config failures.
    pub fn rendezvous(
        rank: usize,
        peers: &[String],
        shards: usize,
        policy_id: u32,
        config: &NetConfig,
    ) -> Result<Tcp, NetError> {
        let world = peers.len();
        if rank >= world {
            return Err(NetError::Config(format!("rank {rank} outside world of {world}")));
        }
        let hello =
            Msg::Hello { rank: rank as u32, world: world as u32, shards: shards as u32, policy_id };
        let listener = TcpListener::bind(peers[rank].as_str()).map_err(|e| NetError::Io {
            peer: rank as u32,
            op: "bind",
            detail: format!("{} ({e})", peers[rank]),
        })?;
        listener.set_nonblocking(true).map_err(|e| NetError::Io {
            peer: rank as u32,
            op: "bind",
            detail: e.to_string(),
        })?;
        let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();

        // Dial every lower rank, retrying on the deterministic schedule
        // until the budget runs out.
        for peer in 0..rank {
            let start = Instant::now();
            let mut attempts = 0u32;
            let stream = loop {
                match TcpStream::connect(peers[peer].as_str()) {
                    Ok(s) => break s,
                    Err(e) => {
                        if start.elapsed() >= config.timeout {
                            return Err(NetError::Rendezvous {
                                missing_rank: peer as u32,
                                attempts,
                                detail: format!("{} ({e})", peers[peer]),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(backoff_ms(attempts)));
                        attempts += 1;
                    }
                }
            };
            let mut stream = configure(stream, peer as u32, config)?;
            write_frame(&mut stream, peer as u32, &hello)?;
            let (reply, _) = read_frame(&mut stream, peer as u32)?;
            validate_hello(&reply, peer, world, shards, policy_id)?;
            streams[peer] = Some(stream);
        }

        // Accept every higher rank; Hellos tell us who arrived.
        let start = Instant::now();
        let mut attempts = 0u32;
        while streams.iter().skip(rank + 1).any(Option::is_none) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let mut stream = configure(stream, rank as u32, config)?;
                    let (greeting, _) = read_frame(&mut stream, rank as u32)?;
                    let Msg::Hello { rank: peer, .. } = greeting else {
                        return Err(NetError::Protocol("expected Hello on accept".into()));
                    };
                    let peer = peer as usize;
                    if peer <= rank || peer >= world {
                        return Err(NetError::Protocol(format!(
                            "rank {rank} accepted a connection claiming rank {peer}"
                        )));
                    }
                    validate_hello(&greeting, peer, world, shards, policy_id)?;
                    if streams[peer].is_some() {
                        return Err(NetError::Protocol(format!("rank {peer} connected twice")));
                    }
                    write_frame(&mut stream, peer as u32, &hello)?;
                    streams[peer] = Some(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if start.elapsed() >= config.timeout {
                        let missing = (rank + 1..world)
                            .find(|&p| streams[p].is_none())
                            .expect("loop condition guarantees a missing rank");
                        return Err(NetError::Rendezvous {
                            missing_rank: missing as u32,
                            attempts,
                            detail: "never connected".into(),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(backoff_ms(attempts)));
                    attempts += 1;
                }
                Err(e) => {
                    return Err(NetError::Io {
                        peer: rank as u32,
                        op: "accept",
                        detail: e.to_string(),
                    })
                }
            }
        }
        Ok(Tcp { rank, streams })
    }

    fn stream(&mut self, peer: usize) -> Result<&mut TcpStream, NetError> {
        if peer >= self.streams.len() || peer == self.rank {
            return Err(NetError::Protocol(format!(
                "rank {} cannot address peer {peer} (world {})",
                self.rank,
                self.streams.len()
            )));
        }
        self.streams[peer].as_mut().ok_or(NetError::Disconnected { peer: peer as u32 })
    }
}

/// Applies the socket options every gist-net stream runs with.
fn configure(stream: TcpStream, peer: u32, config: &NetConfig) -> Result<TcpStream, NetError> {
    let io = |e: std::io::Error| NetError::Io { peer, op: "configure", detail: e.to_string() };
    stream.set_nonblocking(false).map_err(io)?;
    stream.set_nodelay(true).map_err(io)?;
    stream.set_read_timeout(Some(config.timeout)).map_err(io)?;
    stream.set_write_timeout(Some(config.timeout)).map_err(io)?;
    Ok(stream)
}

/// Checks a peer's Hello against our own configuration.
fn validate_hello(
    msg: &Msg,
    peer: usize,
    world: usize,
    shards: usize,
    policy_id: u32,
) -> Result<(), NetError> {
    let Msg::Hello { rank, world: w, shards: s, policy_id: p } = msg else {
        return Err(NetError::Protocol("expected Hello".into()));
    };
    if *rank as usize != peer {
        return Err(NetError::Protocol(format!("peer {peer} introduced itself as rank {rank}")));
    }
    if *w as usize != world || *s as usize != shards || *p != policy_id {
        return Err(NetError::Protocol(format!(
            "rank {rank} config mismatch: world {w}/{world}, shards {s}/{shards}, \
             policy {p}/{policy_id}"
        )));
    }
    Ok(())
}

impl Transport for Tcp {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.streams.len()
    }

    fn send(&mut self, peer: usize, msg: &Msg) -> Result<u64, NetError> {
        let stream = self.stream(peer)?;
        write_frame(stream, peer as u32, msg)
    }

    fn recv(&mut self, peer: usize) -> Result<(Msg, u64), NetError> {
        let stream = self.stream(peer)?;
        read_frame(stream, peer as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Picks `n` distinct loopback addresses by briefly binding port 0.
    pub(crate) fn free_addrs(n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").expect("bind :0");
                format!("127.0.0.1:{}", l.local_addr().expect("addr").port())
            })
            .collect()
    }

    #[test]
    fn backoff_schedule_is_deterministic_doubling_capped() {
        let schedule: Vec<u64> = (0..10).map(backoff_ms).collect();
        assert_eq!(schedule, vec![5, 10, 20, 40, 80, 160, 200, 200, 200, 200]);
        // Pure function: same input, same output, no clock involved.
        assert_eq!(backoff_ms(3), backoff_ms(3));
    }

    #[test]
    fn net_config_resolves_through_the_workspace_policy() {
        let (c, w) = NetConfig::resolve(None);
        assert_eq!(c.timeout, Duration::from_millis(NetConfig::DEFAULT_TIMEOUT_MS));
        assert!(w.is_none());
        let (c, w) = NetConfig::resolve(Some("250"));
        assert_eq!(c.timeout, Duration::from_millis(250));
        assert!(w.is_none());
        for bad in ["0", "-5", "fast", ""] {
            let (c, w) = NetConfig::resolve(Some(bad));
            assert_eq!(c.timeout, Duration::from_millis(NetConfig::DEFAULT_TIMEOUT_MS));
            let w = w.expect("warning");
            assert!(w.contains("GIST_NET_TIMEOUT_MS"), "{w}");
        }
    }

    #[test]
    fn in_process_mesh_delivers_frames_in_order() {
        let mut nodes = InProcess::mesh(3);
        assert_eq!((nodes[1].rank(), nodes[1].world()), (1, 3));
        let msgs = [
            Msg::Stats { step: 0, words: vec![1, 2] },
            Msg::Grad { epoch: 0, step: 0, tensor: 7, wire: vec![] },
        ];
        // 0 -> 2 twice, FIFO.
        for m in &msgs {
            nodes[0].send(2, m).unwrap();
        }
        for m in &msgs {
            let (got, n) = nodes[2].recv(0).unwrap();
            assert_eq!(&got, m);
            assert_eq!(n, m.to_frame().len() as u64);
        }
        // Self- and out-of-range sends are protocol errors.
        assert!(matches!(nodes[0].send(0, &msgs[0]), Err(NetError::Protocol(_))));
        assert!(matches!(nodes[0].send(9, &msgs[0]), Err(NetError::Protocol(_))));
    }

    #[test]
    fn in_process_mesh_reports_dead_peers() {
        let mut nodes = InProcess::mesh(2);
        let n1 = nodes.pop().expect("node 1");
        drop(n1);
        let mut n0 = nodes.pop().expect("node 0");
        assert_eq!(
            n0.send(1, &Msg::Stats { step: 0, words: vec![] }),
            Err(NetError::Disconnected { peer: 1 })
        );
        assert_eq!(n0.recv(1).unwrap_err(), NetError::Disconnected { peer: 1 });
    }

    #[test]
    fn tcp_rendezvous_connects_and_exchanges_both_ways() {
        let peers = free_addrs(3);
        let config = NetConfig::default();
        let handles: Vec<_> = (0..3)
            .map(|rank| {
                let peers = peers.clone();
                std::thread::spawn(move || {
                    let mut t = Tcp::rendezvous(rank, &peers, 8, 1, &config).expect("rendezvous");
                    // Ring exchange: send to (rank+1) % 3, recv from
                    // (rank+2) % 3 — exercises both stream directions.
                    let msg = Msg::Stats { step: rank as u32, words: vec![rank as u32] };
                    t.send((rank + 1) % 3, &msg).expect("send");
                    let from = (rank + 2) % 3;
                    let (got, _) = t.recv(from).expect("recv");
                    assert_eq!(got, Msg::Stats { step: from as u32, words: vec![from as u32] });
                })
            })
            .collect();
        for h in handles {
            h.join().expect("rank thread");
        }
    }

    #[test]
    fn missing_peer_trips_the_connect_timeout_naming_the_rank() {
        // Rank 1 dials rank 0, which never binds. The error must name
        // rank 0 and show at least one retry.
        let peers = free_addrs(2);
        let config = NetConfig { timeout: Duration::from_millis(100) };
        let err = Tcp::rendezvous(1, &peers, 8, 0, &config).expect_err("no peer");
        match err {
            NetError::Rendezvous { missing_rank, attempts, .. } => {
                assert_eq!(missing_rank, 0);
                assert!(attempts >= 1, "expected retries, got {attempts}");
            }
            other => panic!("expected Rendezvous, got {other:?}"),
        }
        // Rank 0 waiting on a rank 1 that never dials in: same shape,
        // naming rank 1.
        let peers = free_addrs(2);
        let err = Tcp::rendezvous(0, &peers, 8, 0, &config).expect_err("no dialer");
        assert!(
            matches!(err, NetError::Rendezvous { missing_rank: 1, .. }),
            "expected Rendezvous naming rank 1, got {err:?}"
        );
    }

    #[test]
    fn slow_peer_within_the_retry_budget_converges() {
        let peers = free_addrs(2);
        let config = NetConfig { timeout: Duration::from_millis(5_000) };
        let p0 = peers.clone();
        let h0 = std::thread::spawn(move || Tcp::rendezvous(0, &p0, 8, 0, &config));
        // Rank 1 shows up late; rank 0's accept loop must keep retrying.
        std::thread::sleep(Duration::from_millis(120));
        let p1 = peers.clone();
        let h1 = std::thread::spawn(move || Tcp::rendezvous(1, &p1, 8, 0, &config));
        let t0 = h0.join().expect("rank 0 thread").expect("rank 0 rendezvous");
        let t1 = h1.join().expect("rank 1 thread").expect("rank 1 rendezvous");
        assert_eq!((t0.rank(), t0.world()), (0, 2));
        assert_eq!((t1.rank(), t1.world()), (1, 2));
    }

    #[test]
    fn hello_mismatches_fail_by_name() {
        // Shard-count mismatch: both sides come up, the handshake rejects.
        let peers = free_addrs(2);
        let config = NetConfig { timeout: Duration::from_millis(2_000) };
        let p0 = peers.clone();
        let h0 = std::thread::spawn(move || Tcp::rendezvous(0, &p0, 8, 0, &config));
        let h1 = std::thread::spawn({
            let peers = peers.clone();
            move || Tcp::rendezvous(1, &peers, 4, 0, &config)
        });
        let r0 = h0.join().expect("thread 0");
        let r1 = h1.join().expect("thread 1");
        // At least one side must reject with a Protocol error naming the
        // config mismatch (the other may see a disconnect).
        let errs: Vec<NetError> = [r0.err(), r1.err()].into_iter().flatten().collect();
        assert!(
            errs.iter().any(|e| matches!(e, NetError::Protocol(msg) if msg.contains("shards"))),
            "expected a shards mismatch, got {errs:?}"
        );
    }

    #[test]
    fn mid_stream_disconnect_is_a_typed_error_not_a_panic() {
        let peers = free_addrs(2);
        let config = NetConfig { timeout: Duration::from_millis(2_000) };
        let p1 = peers.clone();
        let h1 = std::thread::spawn(move || {
            let mut t = Tcp::rendezvous(1, &p1, 8, 0, &config).expect("rendezvous");
            // Write a *partial* frame — a length prefix promising more
            // than is ever sent — then drop the socket.
            use std::io::Write as _;
            let s = t.streams[0].as_mut().expect("stream to 0");
            s.write_all(&100u32.to_le_bytes()).expect("partial write");
            s.write_all(b"GNT1").expect("partial write");
        });
        let mut t0 = Tcp::rendezvous(0, &peers, 8, 0, &config).expect("rendezvous");
        h1.join().expect("rank 1 thread");
        let err = t0.recv(1).expect_err("partial frame must not parse");
        assert_eq!(err, NetError::Disconnected { peer: 1 });
        // The transport stays usable as an error reporter, not a panic.
        assert!(t0.recv(1).is_err());
    }

    #[test]
    fn tcp_observed_bytes_match_frame_sizes() {
        let peers = free_addrs(2);
        let config = NetConfig::default();
        let p1 = peers.clone();
        let h1 = std::thread::spawn(move || {
            let mut t = Tcp::rendezvous(1, &p1, 8, 0, &config).expect("rendezvous");
            let msg = Msg::Grad { epoch: 0, step: 1, tensor: 2, wire: vec![9; 33] };
            let sent = t.send(0, &msg).expect("send");
            (msg, sent)
        });
        let mut t0 = Tcp::rendezvous(0, &peers, 8, 0, &config).expect("rendezvous");
        let (msg, sent) = h1.join().expect("rank 1 thread");
        let (got, observed) = t0.recv(1).expect("recv");
        assert_eq!(got, msg);
        assert_eq!(observed, sent);
        assert_eq!(observed, msg.to_frame().len() as u64);
    }
}
