#![warn(missing_docs)]

//! # gist-net
//!
//! Real multi-process transport for compressed gradient exchange — the
//! executed counterpart of `gist-dist`'s virtual-clock link engine.
//!
//! `gist-dist` proved the fixed-reduction-tree all-reduce is bitwise
//! invariant to replica count and *priced* its encoded bytes on a
//! simulated link. This crate makes the placement real: `N` OS processes,
//! one model replica each, exchanging [`gist_encodings::Wire`]-encoded
//! gradients over framed, versioned `std::net` TCP — and the merged
//! update stays bit-identical to the in-process run, because nothing
//! about the arithmetic moved, only who carries the bytes.
//!
//! Three layers, three modules:
//!
//! - [`frame`]: the length-prefixed, magic+version-checked message layer.
//!   Every truncation or corruption is a typed [`NetError`]; malformed
//!   bytes never panic and never partially apply a gradient.
//! - [`transport`]: the [`Transport`] seam with two impls — [`InProcess`]
//!   (a channel mesh that still rides the frame byte path) and [`Tcp`]
//!   (deterministic rendezvous: rank 0..N bind their own address, dial
//!   lower ranks with bounded [`backoff_ms`] retries, accept higher
//!   ranks, and validate [`Msg::Hello`] both ways).
//! - [`trainer`]: [`NetTrainer`] — one rank mirroring in-process replica
//!   `r` exactly: same shard sequence, same local-edge
//!   [`gist_dist::combine_into`], same encoded bytes on crossing edges,
//!   rank-0 mean-scale-then-broadcast, and the no-partial-apply rule.
//!
//! Observability: every crossing edge and broadcast leg records a
//! [`gist_obs::Event::NetTransfer`] with the observed wall-clock and the
//! observed-vs-priced byte pair, so a trace shows where the link model
//! and the real socket diverge.

pub mod frame;
pub mod trainer;
pub mod transport;

pub use frame::{
    read_frame, write_frame, Msg, NetError, GRAD_FRAME_OVERHEAD, MAGIC, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use trainer::{NetStepReport, NetTrainer};
pub use transport::{backoff_ms, InProcess, NetConfig, Tcp, Transport};
