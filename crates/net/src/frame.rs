//! The framed, versioned gist-net message layer.
//!
//! Every message that crosses a process boundary travels as one frame:
//!
//! ```text
//! | u32 body_len | "GNT1" | u8 version | u8 kind | kind fields ... |
//! |  (LE, excl.  |  magic |    = 1     |         |                 |
//! |  this field) |        |            |         |                 |
//! ```
//!
//! Kind `0` is [`Msg::Hello`] (rendezvous validation: rank, world, shard
//! count, codec-policy id), kind `1` is [`Msg::Grad`] (an epoch/step/
//! tensor-id header followed by a serialized [`gist_encodings::Wire`]
//! payload), kind `2` is [`Msg::Stats`] (the per-shard statistics table).
//!
//! The decoding contract mirrors the `Wire` byte layer underneath it:
//! **any** byte sequence — truncated at any offset, bit-flipped magic or
//! version or length, garbage kinds, oversized length fields — produces a
//! typed [`NetError`], never a panic and never an allocation larger than
//! [`MAX_FRAME_BYTES`].

use gist_encodings::WireError;
use std::io::{Read, Write};

/// Leading magic of a gist-net frame ("Gist NeT v1").
pub const MAGIC: [u8; 4] = *b"GNT1";

/// Protocol version carried in every frame; bumped on any layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on one frame body. A corrupted length field is rejected
/// against this cap *before* any allocation, so garbage on the socket can
/// cost at most one bounded read.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

/// Fixed framing overhead of a [`Msg::Grad`]: observed socket bytes are
/// exactly `serialized Wire buffer + GRAD_FRAME_OVERHEAD` (length prefix
/// 4, magic 4, version 1, kind 1, epoch/step/tensor 12, wire length 4).
/// Note the serialized buffer (`Wire::to_bytes`) itself carries a header
/// over the *priced* `Wire::wire_bytes` — for the dense codec that header
/// is exactly 13 bytes, the relation `tests/net_equivalence.rs` pins.
pub const GRAD_FRAME_OVERHEAD: u64 = 26;

/// A transport or protocol failure. Every variant is a rejection: malformed
/// bytes, a dead peer, or a rendezvous that ran out its budget — never a
/// panic, and (at the trainer layer) never a partially applied gradient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A frame body ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The leading magic was not `GNT1`.
    BadMagic([u8; 4]),
    /// The version byte named a protocol this build does not speak.
    BadVersion(u8),
    /// The kind byte held an unassigned value.
    BadKind(u8),
    /// The length prefix promised more than [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// Promised body length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The embedded `Wire` payload failed to parse.
    Wire(WireError),
    /// Frames were individually well-formed but violated the exchange
    /// protocol (wrong kind, mismatched step/tensor header, wrong Hello).
    Protocol(String),
    /// Invalid trainer/transport configuration.
    Config(String),
    /// Rendezvous exhausted its retry budget waiting for a peer.
    Rendezvous {
        /// The rank that never showed up.
        missing_rank: u32,
        /// Connect attempts made before giving up.
        attempts: u32,
        /// Last underlying failure.
        detail: String,
    },
    /// The peer closed its end mid-stream.
    Disconnected {
        /// The peer rank whose stream died.
        peer: u32,
    },
    /// A socket operation failed or timed out.
    Io {
        /// The peer rank involved.
        peer: u32,
        /// Which operation (`read`, `write`, `bind`, ...).
        op: &'static str,
        /// The underlying error text.
        detail: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, {available} available")
            }
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            NetError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})")
            }
            NetError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            NetError::Wire(e) => write!(f, "bad wire payload: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Config(msg) => write!(f, "net config error: {msg}"),
            NetError::Rendezvous { missing_rank, attempts, detail } => write!(
                f,
                "rendezvous failed: rank {missing_rank} unreachable after {attempts} \
                 attempt(s) ({detail})"
            ),
            NetError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            NetError::Io { peer, op, detail } => {
                write!(f, "socket {op} to/from rank {peer} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

/// One gist-net message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Rendezvous handshake: both sides validate every field against their
    /// own configuration so a misassembled fleet fails fast and by name.
    Hello {
        /// Sender's rank.
        rank: u32,
        /// Sender's world size.
        world: u32,
        /// Sender's shard count.
        shards: u32,
        /// Sender's codec-policy meta id ([`gist_encodings::CodecPolicy::meta_id`]).
        policy_id: u32,
    },
    /// One gradient payload: a reduction-tree edge or a broadcast leg.
    Grad {
        /// Training epoch of the sending step.
        epoch: u32,
        /// Global step index.
        step: u32,
        /// Tensor sequence number within the step (main and secondary
        /// gradients each get their own id, in node order).
        tensor: u32,
        /// A serialized [`gist_encodings::Wire`] (`Wire::to_bytes`).
        wire: Vec<u8>,
    },
    /// The per-shard statistics exchange (loss bits, correct, batch per
    /// shard), gathered to rank 0 and broadcast back as a full table so
    /// every rank computes the identical global loss.
    Stats {
        /// Global step index.
        step: u32,
        /// Flat `u32` payload; layout is the trainer's contract.
        words: Vec<u32>,
    },
}

/// Bounds-checked little-endian reader over one frame body.
struct Rd<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Rd<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Rd { buf, pos: 0 }
    }

    fn need(&self, n: usize) -> Result<(), NetError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(NetError::Truncated { needed: n, available });
        }
        Ok(())
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        self.need(4)?;
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().expect("4 bytes"));
        self.pos += 4;
        Ok(v)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        self.need(n)?;
        let v = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(v)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

impl Msg {
    fn kind(&self) -> u8 {
        match self {
            Msg::Hello { .. } => 0,
            Msg::Grad { .. } => 1,
            Msg::Stats { .. } => 2,
        }
    }

    /// Serializes to one complete frame, length prefix included.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        body.extend_from_slice(&MAGIC);
        body.push(PROTOCOL_VERSION);
        body.push(self.kind());
        match self {
            Msg::Hello { rank, world, shards, policy_id } => {
                put_u32(&mut body, *rank);
                put_u32(&mut body, *world);
                put_u32(&mut body, *shards);
                put_u32(&mut body, *policy_id);
            }
            Msg::Grad { epoch, step, tensor, wire } => {
                put_u32(&mut body, *epoch);
                put_u32(&mut body, *step);
                put_u32(&mut body, *tensor);
                put_u32(&mut body, wire.len() as u32);
                body.extend_from_slice(wire);
            }
            Msg::Stats { step, words } => {
                put_u32(&mut body, *step);
                put_u32(&mut body, words.len() as u32);
                for w in words {
                    put_u32(&mut body, *w);
                }
            }
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Parses one frame body (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// A typed [`NetError`] on any truncation, bad magic/version/kind, or
    /// internal length inconsistency — malformed input never panics.
    pub fn from_body(body: &[u8]) -> Result<Msg, NetError> {
        let mut r = Rd::new(body);
        let magic = r.bytes(4)?;
        if magic != MAGIC {
            return Err(NetError::BadMagic([magic[0], magic[1], magic[2], magic[3]]));
        }
        let version = r.u8()?;
        if version != PROTOCOL_VERSION {
            return Err(NetError::BadVersion(version));
        }
        let kind = r.u8()?;
        let msg = match kind {
            0 => Msg::Hello {
                rank: r.u32()?,
                world: r.u32()?,
                shards: r.u32()?,
                policy_id: r.u32()?,
            },
            1 => {
                let epoch = r.u32()?;
                let step = r.u32()?;
                let tensor = r.u32()?;
                let n = r.u32()? as usize;
                Msg::Grad { epoch, step, tensor, wire: r.bytes(n)?.to_vec() }
            }
            2 => {
                let step = r.u32()?;
                let n = r.u32()? as usize;
                // Bound before allocating: the body can hold at most
                // remaining/4 words, so a corrupt count is a truncation.
                r.need(n.saturating_mul(4))?;
                let words = (0..n).map(|_| r.u32()).collect::<Result<Vec<u32>, _>>()?;
                Msg::Stats { step, words }
            }
            k => return Err(NetError::BadKind(k)),
        };
        if r.remaining() != 0 {
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after frame body",
                r.remaining()
            )));
        }
        Ok(msg)
    }

    /// Parses one complete frame (length prefix included), rejecting
    /// prefix/body length disagreements and trailing bytes.
    ///
    /// # Errors
    ///
    /// A typed [`NetError`]; see [`Msg::from_body`].
    pub fn from_frame(frame: &[u8]) -> Result<Msg, NetError> {
        let mut r = Rd::new(frame);
        let len = r.u32()? as usize;
        if len > MAX_FRAME_BYTES {
            return Err(NetError::FrameTooLarge { len, max: MAX_FRAME_BYTES });
        }
        let available = r.remaining();
        if available != len {
            if available < len {
                return Err(NetError::Truncated { needed: len, available });
            }
            return Err(NetError::Protocol(format!(
                "{} trailing bytes after frame",
                available - len
            )));
        }
        Msg::from_body(r.bytes(len)?)
    }
}

/// Maps one socket-level failure to a typed [`NetError`].
fn io_err(peer: u32, op: &'static str, e: &std::io::Error) -> NetError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::BrokenPipe
        | ErrorKind::ConnectionAborted => NetError::Disconnected { peer },
        ErrorKind::WouldBlock | ErrorKind::TimedOut => {
            NetError::Io { peer, op, detail: "timed out".into() }
        }
        _ => NetError::Io { peer, op, detail: e.to_string() },
    }
}

/// Writes one framed message to a stream. Returns the observed bytes that
/// hit the stream (body plus the 4-byte length prefix).
///
/// # Errors
///
/// [`NetError::Disconnected`] when the peer is gone, [`NetError::Io`] on
/// timeouts and other socket failures.
pub fn write_frame(w: &mut impl Write, peer: u32, msg: &Msg) -> Result<u64, NetError> {
    let frame = msg.to_frame();
    w.write_all(&frame).map_err(|e| io_err(peer, "write", &e))?;
    w.flush().map_err(|e| io_err(peer, "write", &e))?;
    Ok(frame.len() as u64)
}

/// Reads one framed message from a stream. Returns the message plus the
/// observed bytes consumed (body plus the 4-byte length prefix).
///
/// # Errors
///
/// [`NetError::Disconnected`] on mid-frame EOF, [`NetError::Io`] on
/// timeouts, and the [`Msg::from_body`] errors on malformed bodies.
pub fn read_frame(r: &mut impl Read, peer: u32) -> Result<(Msg, u64), NetError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix).map_err(|e| io_err(peer, "read", &e))?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(NetError::FrameTooLarge { len, max: MAX_FRAME_BYTES });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| io_err(peer, "read", &e))?;
    Ok((Msg::from_body(&body)?, 4 + len as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_encodings::{TransferCodec, Wire};

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Hello { rank: 3, world: 4, shards: 8, policy_id: 100 },
            Msg::Grad {
                epoch: 0,
                step: 17,
                tensor: 5,
                wire: Wire::encode(TransferCodec::Ssdc, &[0.0, -0.0, 1.5, f32::NAN]).to_bytes(),
            },
            Msg::Grad { epoch: 1, step: 0, tensor: 0, wire: Vec::new() },
            Msg::Stats { step: 2, words: vec![0x3f80_0000, 3, 4, 0, 0, 0] },
            Msg::Stats { step: 0, words: Vec::new() },
        ]
    }

    #[test]
    fn frames_round_trip_exactly() {
        for msg in samples() {
            let frame = msg.to_frame();
            assert_eq!(Msg::from_frame(&frame).unwrap(), msg);
            assert_eq!(Msg::from_body(&frame[4..]).unwrap(), msg);
        }
    }

    #[test]
    fn stream_read_write_round_trips_and_counts_observed_bytes() {
        let mut buf = Vec::new();
        let mut total = 0u64;
        for msg in samples() {
            total += write_frame(&mut buf, 1, &msg).unwrap();
        }
        assert_eq!(total, buf.len() as u64);
        let mut r = &buf[..];
        let mut seen = 0u64;
        for msg in samples() {
            let (got, n) = read_frame(&mut r, 1).unwrap();
            assert_eq!(got, msg);
            seen += n;
        }
        assert_eq!(seen, total);
        assert!(r.is_empty());
    }

    #[test]
    fn every_truncation_of_every_frame_is_a_typed_error() {
        for msg in samples() {
            let frame = msg.to_frame();
            for cut in 0..frame.len() {
                let err = Msg::from_frame(&frame[..cut])
                    .expect_err(&format!("cut at {cut}/{} parsed", frame.len()));
                assert!(matches!(err, NetError::Truncated { .. }), "cut {cut}: {err:?}");
                // The streaming reader rejects the same cut as a typed
                // error too (EOF mid-frame = disconnect).
                let mut r = &frame[..cut];
                let err = read_frame(&mut r, 2).expect_err("stream cut parsed");
                assert!(
                    matches!(err, NetError::Disconnected { .. } | NetError::Truncated { .. }),
                    "stream cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn corrupted_magic_version_and_kind_are_rejected_by_name() {
        let frame = samples()[0].to_frame();
        let mut bad = frame.clone();
        bad[4] = b'X';
        assert!(matches!(Msg::from_frame(&bad), Err(NetError::BadMagic(_))));
        let mut bad = frame.clone();
        bad[8] = PROTOCOL_VERSION + 1;
        assert_eq!(Msg::from_frame(&bad), Err(NetError::BadVersion(PROTOCOL_VERSION + 1)));
        let mut bad = frame.clone();
        bad[9] = 7;
        assert_eq!(Msg::from_frame(&bad), Err(NetError::BadKind(7)));
    }

    #[test]
    fn corrupted_length_fields_never_allocate_unbounded() {
        // Oversized length prefix: rejected against the cap, body unread.
        let mut frame = samples()[1].to_frame();
        frame[..4].copy_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(Msg::from_frame(&frame), Err(NetError::FrameTooLarge { .. })));
        let mut r = &frame[..];
        assert!(matches!(read_frame(&mut r, 0), Err(NetError::FrameTooLarge { .. })));
        // Oversized interior count (Stats word count): a truncation, not
        // an allocation.
        let msg = Msg::Stats { step: 1, words: vec![1, 2, 3] };
        let mut frame = msg.to_frame();
        let count_at = frame.len() - 3 * 4 - 4;
        frame[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(Msg::from_frame(&frame), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn trailing_bytes_and_prefix_mismatch_are_rejected() {
        let mut frame = samples()[0].to_frame();
        frame.push(0);
        assert!(matches!(Msg::from_frame(&frame), Err(NetError::Protocol(_))));
        let frame = samples()[3].to_frame();
        // Shrink the prefix so the body carries trailing bytes.
        let mut short = frame.clone();
        let body_len = u32::from_le_bytes(frame[..4].try_into().unwrap());
        short[..4].copy_from_slice(&(body_len - 4).to_le_bytes());
        assert!(Msg::from_frame(&short).is_err());
    }

    #[test]
    fn random_garbage_never_panics() {
        // A cheap deterministic LCG fuzz over the whole parse surface.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        for len in 0..200usize {
            let buf: Vec<u8> = (0..len).map(|_| next()).collect();
            let _ = Msg::from_frame(&buf);
            let _ = Msg::from_body(&buf);
            let mut r = &buf[..];
            let _ = read_frame(&mut r, 0);
        }
        // Garbage that *starts* like a real frame but decays into noise.
        for msg in samples() {
            let mut frame = msg.to_frame();
            for i in 4..frame.len() {
                let orig = frame[i];
                frame[i] ^= 0xa5;
                let _ = Msg::from_frame(&frame);
                frame[i] = orig;
            }
        }
    }

    #[test]
    fn grad_frame_overhead_is_the_documented_constant() {
        for wire_len in [0usize, 1, 33, 4096] {
            let msg = Msg::Grad { epoch: 9, step: 8, tensor: 7, wire: vec![0xab; wire_len] };
            assert_eq!(
                msg.to_frame().len() as u64,
                wire_len as u64 + GRAD_FRAME_OVERHEAD,
                "wire_len={wire_len}"
            );
        }
    }

    #[test]
    fn grad_wire_payload_survives_framing_bit_exactly() {
        let data = [1.0f32, -0.0, 0.0, f32::INFINITY, -2.5e-40];
        for codec in [TransferCodec::None, TransferCodec::Ssdc] {
            let wire = Wire::encode(codec, &data);
            let msg = Msg::Grad { epoch: 0, step: 0, tensor: 1, wire: wire.to_bytes() };
            let Msg::Grad { wire: back, .. } = Msg::from_frame(&msg.to_frame()).unwrap() else {
                panic!("wrong kind");
            };
            let got = Wire::from_bytes(&back).unwrap().decode();
            let want: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(), want);
        }
    }
}
