//! One rank of a multi-process data-parallel trainer.
//!
//! [`NetTrainer`] is the transport-threaded twin of
//! [`gist_dist::DistTrainer`]: rank `r` of `N` runs exactly the shard
//! sequence in-process replica `r` runs (`r, r + N, r + 2N, ...`), every
//! reduction-tree edge whose endpoints share the rank uses the identical
//! [`gist_dist::combine_into`] path, and every crossing edge ships the
//! same `Wire::encode(policy.choose(payload))` bytes through the
//! [`Transport`] — `Wire::to_bytes`/`from_bytes` round-trips exactly, so
//! the decoded values (and hence the serial accumulation) are bit-equal to
//! the in-process run. Slot `0` (rank 0) mean-scales the tree sum and
//! broadcasts one encoded copy; every rank — rank 0 included — decodes
//! that same wire, so lossy codecs (DPR) perturb identically everywhere.
//! The result: merged updates bitwise-identical to in-process gist-dist
//! for every replica count and codec, which `tests/net_equivalence.rs`
//! pins.
//!
//! **No partial application:** every merged tensor for a step is computed
//! (and every transport exchange completed) before any parameter moves. A
//! typed [`NetError`] aborts the step with parameters untouched.

use crate::frame::{Msg, NetError};
use crate::transport::Transport;
use gist_dist::{combine_into, reduction_rounds};
use gist_encodings::{CodecPolicy, Wire};
use gist_obs::Event;
use gist_runtime::params::{sgd_update, ParamGrads};
use gist_runtime::{Executor, RuntimeError, StepStats};
use gist_tensor::Tensor;
use std::time::Instant;

/// What one global step produced on this rank. Field-for-field comparable
/// with [`gist_dist::DistStepReport`]; the global loss/correct/batch and
/// all byte counters are identical across ranks by construction.
#[derive(Debug)]
pub struct NetStepReport {
    /// Mean of the shard mean losses (summed in shard-id order — the
    /// identical `f32` operation sequence on every rank).
    pub loss: f32,
    /// Correct top-1 predictions summed over all shards.
    pub correct: usize,
    /// Total examples over all shards.
    pub batch: usize,
    /// The merged (mean, broadcast-decoded) gradient applied everywhere.
    pub merged: Vec<Option<ParamGrads>>,
    /// Priced encoded bytes per tree edge, `[round][edge]` matching
    /// [`reduction_rounds`] — restricted to edges **this rank touches**
    /// (local combines and crossing edges it sends or receives). A
    /// crossing edge is priced identically on both endpoints, so
    /// overlaying every rank's table reconstructs the in-process report's
    /// full table exactly — which `tests/net_equivalence.rs` checks.
    pub edge_bytes: Vec<Vec<u64>>,
    /// Priced encoded bytes of one broadcast copy of the merged gradient
    /// (identical on every rank: receivers price the same wire the root
    /// priced once).
    pub broadcast_bytes: u64,
    /// Total priced bytes over this rank's reduction-tree edges.
    pub reduce_bytes: u64,
    /// Dense baseline bytes for one gradient copy (`scalars * 4`).
    pub dense_grad_bytes: u64,
    /// Observed bytes that actually crossed this rank's transport this
    /// step (framing included) — the measured side of the
    /// observed-vs-priced pair.
    pub observed_wire_bytes: u64,
}

/// One rank of the multi-process trainer: a single local executor plus a
/// [`Transport`] carrying the tree edges and broadcast legs that cross
/// rank boundaries.
#[derive(Debug)]
pub struct NetTrainer<T: Transport> {
    exec: Executor,
    transport: T,
    policy: CodecPolicy,
    shards: usize,
    epoch: u32,
    step_no: u32,
    events: Vec<Event>,
}

impl<T: Transport> NetTrainer<T> {
    /// Builds this rank's executor via `build` (every rank must use the
    /// same graph and seed — identical initial parameters are the other
    /// half of the lockstep invariant).
    ///
    /// # Errors
    ///
    /// [`NetError::Config`] unless `1 <= world <= shards` and `world`
    /// divides `shards`; builder failures surface as `Config` too.
    pub fn new(
        transport: T,
        shards: usize,
        policy: CodecPolicy,
        build: impl FnOnce() -> Result<Executor, RuntimeError>,
    ) -> Result<Self, NetError> {
        let world = transport.world();
        if world == 0 || shards == 0 {
            return Err(NetError::Config("world and shards must be positive".into()));
        }
        if world > shards || !shards.is_multiple_of(world) {
            return Err(NetError::Config(format!("world ({world}) must divide shards ({shards})")));
        }
        let exec = build().map_err(|e| NetError::Config(e.to_string()))?;
        Ok(Self { exec, transport, policy, shards, epoch: 0, step_no: 0, events: Vec::new() })
    }

    /// This rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.transport.rank()
    }

    /// Total rank count.
    #[must_use]
    pub fn world(&self) -> usize {
        self.transport.world()
    }

    /// Micro-batch shards per global step.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The codec policy applied on every tree edge and the broadcast.
    #[must_use]
    pub fn policy(&self) -> CodecPolicy {
        self.policy
    }

    /// This rank's executor (identical parameters on every rank after
    /// every step — the fingerprint the equivalence gate compares).
    #[must_use]
    pub fn exec(&self) -> &Executor {
        &self.exec
    }

    /// Drains the [`Event::NetTransfer`] trace events recorded so far
    /// (observed wall-clock and observed-vs-priced bytes per crossing
    /// edge and broadcast leg).
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Runs one global step: this rank's shards forward/backward, the
    /// fixed-tree all-reduce with local edges combined in place and
    /// crossing edges framed over the transport, the rank-0 mean-scale +
    /// broadcast, the per-shard stats exchange, and — only after every
    /// tensor merged — the identical SGD update.
    ///
    /// `images`/`labels` must hold **all** `shards()` shard minibatches on
    /// every rank (each rank computes only its own, but indexes the shared
    /// table), exactly as the in-process trainer is fed.
    ///
    /// # Errors
    ///
    /// [`NetError::Config`] on malformed inputs; transport and protocol
    /// errors abort the step with parameters untouched.
    pub fn step(
        &mut self,
        images: &[Tensor],
        labels: &[Vec<usize>],
        lr: f32,
    ) -> Result<NetStepReport, NetError> {
        let s = self.shards;
        let n = self.world();
        let r = self.rank();
        if images.len() != s || labels.len() != s {
            return Err(NetError::Config(format!(
                "expected {s} shard minibatches, got {} images / {} labels",
                images.len(),
                labels.len()
            )));
        }
        let t0 = Instant::now();
        let observed_before: u64 = 0;
        let mut observed = observed_before;

        // Phase 1: this rank's shards, in the same order replica r of the
        // in-process trainer steps them.
        let mut local: Vec<(usize, StepStats, Vec<Option<ParamGrads>>)> = Vec::with_capacity(s / n);
        let mut shard = r;
        while shard < s {
            let (stats, grads) = self
                .exec
                .forward_backward(&images[shard], &labels[shard])
                .map_err(|e| NetError::Config(e.to_string()))?;
            local.push((shard, stats, grads));
            shard += n;
        }

        // Phase 2: per-tensor fixed-tree reduce + broadcast. Tensor ids
        // count main-then-secondary in node order on every rank, so the
        // frame headers line up without negotiation.
        let rounds = reduction_rounds(s);
        let mut edge_bytes: Vec<Vec<u64>> = rounds.iter().map(|rd| vec![0u64; rd.len()]).collect();
        let num_nodes = local[0].2.len();
        let inv = 1.0f32 / s as f32;
        let mut merged: Vec<Option<ParamGrads>> = Vec::with_capacity(num_nodes);
        let mut broadcast_bytes = 0u64;
        let mut dense_grad_bytes = 0u64;
        let mut tensor_id = 0u32;
        for node in 0..num_nodes {
            if local[0].2[node].is_none() {
                merged.push(None);
                continue;
            }
            let shape_main = local[0].2[node].as_ref().expect("grads").main.shape();
            let main = self.exchange_tensor(
                &local,
                node,
                false,
                tensor_id,
                &rounds,
                &mut edge_bytes,
                &mut broadcast_bytes,
                &mut observed,
                t0,
            )?;
            tensor_id += 1;
            dense_grad_bytes += main.len() as u64 * 4;
            let main_t = Tensor::from_vec(shape_main, main)
                .map_err(|e| NetError::Config(RuntimeError::from(e).to_string()))?;
            let secondary = if let Some(sec) = &local[0].2[node].as_ref().expect("grads").secondary
            {
                let shape_sec = sec.shape();
                let sec = self.exchange_tensor(
                    &local,
                    node,
                    true,
                    tensor_id,
                    &rounds,
                    &mut edge_bytes,
                    &mut broadcast_bytes,
                    &mut observed,
                    t0,
                )?;
                tensor_id += 1;
                dense_grad_bytes += sec.len() as u64 * 4;
                Some(
                    Tensor::from_vec(shape_sec, sec)
                        .map_err(|e| NetError::Config(RuntimeError::from(e).to_string()))?,
                )
            } else {
                None
            };
            merged.push(Some(ParamGrads { main: main_t, secondary }));
        }

        // Phase 3: stats exchange — gather per-shard stats to rank 0,
        // broadcast the assembled table, and sum losses in shard-id order
        // so every rank runs the identical f32 operation sequence.
        let table = self.exchange_stats(&local, &mut observed)?;
        let loss = table.iter().map(|(l, _, _)| f32::from_bits(*l)).sum::<f32>() * inv;
        let correct = table.iter().map(|(_, c, _)| *c as usize).sum();
        let batch = table.iter().map(|(_, _, b)| *b as usize).sum();

        // Phase 4: every exchange succeeded — only now touch parameters.
        sgd_update(&mut self.exec.params, &merged, lr);
        self.step_no += 1;

        let reduce_bytes = edge_bytes.iter().flatten().sum();
        Ok(NetStepReport {
            loss,
            correct,
            batch,
            merged,
            edge_bytes,
            broadcast_bytes,
            reduce_bytes,
            dense_grad_bytes,
            observed_wire_bytes: observed,
        })
    }

    /// Reduces and broadcasts one gradient tensor across ranks. The
    /// mean-scale happens on rank 0 *before* the broadcast encode,
    /// exactly as `DistTrainer::broadcast_roundtrip` orders it, so the
    /// returned vector is already the broadcast-decoded mean.
    #[allow(clippy::too_many_arguments)]
    fn exchange_tensor(
        &mut self,
        local: &[(usize, StepStats, Vec<Option<ParamGrads>>)],
        node: usize,
        secondary: bool,
        tensor_id: u32,
        rounds: &[Vec<(usize, usize)>],
        edge_bytes: &mut [Vec<u64>],
        broadcast_bytes: &mut u64,
        observed: &mut u64,
        t0: Instant,
    ) -> Result<Vec<f32>, NetError> {
        let s = self.shards;
        let n = self.world();
        let r = self.rank();
        // Slot s lives on rank s % n (the rank that computed shard s).
        let mut slots: Vec<Option<Vec<f32>>> = (0..s).map(|_| None).collect();
        for (shard, _, grads) in local {
            let g = grads[node].as_ref().expect("shard grad structure mismatch");
            let data = if secondary {
                g.secondary.as_ref().expect("secondary grad").data()
            } else {
                g.main.data()
            };
            slots[*shard] = Some(data.to_vec());
        }
        for (round_idx, round) in rounds.iter().enumerate() {
            for (edge_idx, &(dst, src)) in round.iter().enumerate() {
                let dst_rank = dst % n;
                let src_rank = src % n;
                if dst_rank == r && src_rank == r {
                    // Local edge: the in-process combine, byte for byte.
                    let incoming = slots[src].take().expect("source slot");
                    let acc = slots[dst].as_mut().expect("destination slot");
                    edge_bytes[round_idx][edge_idx] +=
                        combine_into(acc, &incoming, self.policy.choose(&incoming));
                } else if src_rank == r {
                    let payload = slots[src].take().expect("source slot");
                    let wire = Wire::encode(self.policy.choose(&payload), &payload);
                    let priced = wire.wire_bytes();
                    let msg = Msg::Grad {
                        epoch: self.epoch,
                        step: self.step_no,
                        tensor: tensor_id,
                        wire: wire.to_bytes(),
                    };
                    let start = t0.elapsed().as_nanos() as u64;
                    let sent = self.transport.send(dst_rank, &msg)?;
                    *observed += sent;
                    edge_bytes[round_idx][edge_idx] += priced;
                    self.events.push(Event::NetTransfer {
                        name: format!("allreduce.n{n}.t{tensor_id}.r{round_idx}e{edge_idx}"),
                        rank: r as u32,
                        peer: dst_rank as u32,
                        sent: true,
                        priced_bytes: priced,
                        observed_bytes: sent,
                        ts_ns: start,
                        dur_ns: t0.elapsed().as_nanos() as u64 - start,
                    });
                } else if dst_rank == r {
                    let start = t0.elapsed().as_nanos() as u64;
                    let (msg, got) = self.transport.recv(src_rank)?;
                    *observed += got;
                    let wire = self.expect_grad(msg, tensor_id)?;
                    let incoming = wire.decode();
                    let acc = slots[dst].as_mut().expect("destination slot");
                    if incoming.len() != acc.len() {
                        return Err(NetError::Protocol(format!(
                            "tensor {tensor_id}: peer sent {} elements, expected {}",
                            incoming.len(),
                            acc.len()
                        )));
                    }
                    // The identical serial accumulation `combine_into`
                    // performs after its own encode/decode round-trip.
                    for (a, d) in acc.iter_mut().zip(&incoming) {
                        *a += *d;
                    }
                    edge_bytes[round_idx][edge_idx] += wire.wire_bytes();
                    self.events.push(Event::NetTransfer {
                        name: format!("allreduce.n{n}.t{tensor_id}.r{round_idx}e{edge_idx}"),
                        rank: r as u32,
                        peer: src_rank as u32,
                        sent: false,
                        priced_bytes: wire.wire_bytes(),
                        observed_bytes: got,
                        ts_ns: start,
                        dur_ns: t0.elapsed().as_nanos() as u64 - start,
                    });
                }
            }
        }

        // Broadcast: rank 0 owns slot 0, mean-scales, encodes once; every
        // rank (sender included) decodes the same wire.
        let inv = 1.0f32 / s as f32;
        if r == 0 {
            let mut sum = slots[0].take().expect("root slot");
            for v in &mut sum {
                *v *= inv;
            }
            let wire = Wire::encode(self.policy.choose(&sum), &sum);
            let priced = wire.wire_bytes();
            let bytes = wire.to_bytes();
            for peer in 1..n {
                let msg = Msg::Grad {
                    epoch: self.epoch,
                    step: self.step_no,
                    tensor: tensor_id,
                    wire: bytes.clone(),
                };
                let start = t0.elapsed().as_nanos() as u64;
                let sent = self.transport.send(peer, &msg)?;
                *observed += sent;
                self.events.push(Event::NetTransfer {
                    name: format!("allreduce.n{n}.t{tensor_id}.bcast{peer}"),
                    rank: 0,
                    peer: peer as u32,
                    sent: true,
                    priced_bytes: priced,
                    observed_bytes: sent,
                    ts_ns: start,
                    dur_ns: t0.elapsed().as_nanos() as u64 - start,
                });
            }
            *broadcast_bytes += priced;
            Ok(wire.decode())
        } else {
            let start = t0.elapsed().as_nanos() as u64;
            let (msg, got) = self.transport.recv(0)?;
            *observed += got;
            let wire = self.expect_grad(msg, tensor_id)?;
            *broadcast_bytes += wire.wire_bytes();
            self.events.push(Event::NetTransfer {
                name: format!("allreduce.n{n}.t{tensor_id}.bcast{r}"),
                rank: r as u32,
                peer: 0,
                sent: false,
                priced_bytes: wire.wire_bytes(),
                observed_bytes: got,
                ts_ns: start,
                dur_ns: t0.elapsed().as_nanos() as u64 - start,
            });
            Ok(wire.decode())
        }
    }

    /// Validates a received frame as this step's gradient for `tensor_id`
    /// and parses its wire payload.
    fn expect_grad(&self, msg: Msg, tensor_id: u32) -> Result<Wire, NetError> {
        let Msg::Grad { epoch, step, tensor, wire } = msg else {
            return Err(NetError::Protocol(format!(
                "expected a Grad frame for tensor {tensor_id}"
            )));
        };
        if epoch != self.epoch || step != self.step_no || tensor != tensor_id {
            return Err(NetError::Protocol(format!(
                "header mismatch: got epoch {epoch} step {step} tensor {tensor}, \
                 expected epoch {} step {} tensor {tensor_id}",
                self.epoch, self.step_no
            )));
        }
        Ok(Wire::from_bytes(&wire)?)
    }

    /// Gathers per-shard `(loss_bits, correct, batch)` to rank 0 and
    /// broadcasts the assembled table in shard-id order.
    fn exchange_stats(
        &mut self,
        local: &[(usize, StepStats, Vec<Option<ParamGrads>>)],
        observed: &mut u64,
    ) -> Result<Vec<(u32, u32, u32)>, NetError> {
        let s = self.shards;
        let n = self.world();
        let r = self.rank();
        let mut table: Vec<Option<(u32, u32, u32)>> = (0..s).map(|_| None).collect();
        for (shard, stats, _) in local {
            table[*shard] = Some((stats.loss.to_bits(), stats.correct as u32, stats.batch as u32));
        }
        if r == 0 {
            for peer in 1..n {
                let (msg, got) = self.transport.recv(peer)?;
                *observed += got;
                let Msg::Stats { step, words } = msg else {
                    return Err(NetError::Protocol("expected a Stats frame".into()));
                };
                if step != self.step_no || words.len() % 4 != 0 {
                    return Err(NetError::Protocol("malformed stats gather".into()));
                }
                for chunk in words.chunks_exact(4) {
                    let shard = chunk[0] as usize;
                    if shard >= s || shard % n != peer || table[shard].is_some() {
                        return Err(NetError::Protocol(format!(
                            "stats for shard {shard} from rank {peer} violate ownership"
                        )));
                    }
                    table[shard] = Some((chunk[1], chunk[2], chunk[3]));
                }
            }
            let full: Vec<(u32, u32, u32)> = table
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    t.ok_or_else(|| NetError::Protocol(format!("shard {i} never reported stats")))
                })
                .collect::<Result<_, _>>()?;
            let words: Vec<u32> = full.iter().flat_map(|&(l, c, b)| [l, c, b]).collect();
            for peer in 1..n {
                *observed += self
                    .transport
                    .send(peer, &Msg::Stats { step: self.step_no, words: words.clone() })?;
            }
            Ok(full)
        } else {
            let words: Vec<u32> = local
                .iter()
                .flat_map(|(shard, stats, _)| {
                    [*shard as u32, stats.loss.to_bits(), stats.correct as u32, stats.batch as u32]
                })
                .collect();
            *observed += self.transport.send(0, &Msg::Stats { step: self.step_no, words })?;
            let (msg, got) = self.transport.recv(0)?;
            *observed += got;
            let Msg::Stats { step, words } = msg else {
                return Err(NetError::Protocol("expected the stats broadcast".into()));
            };
            if step != self.step_no || words.len() != s * 3 {
                return Err(NetError::Protocol("malformed stats broadcast".into()));
            }
            Ok(words.chunks_exact(3).map(|c| (c[0], c[1], c[2])).collect())
        }
    }
}
