//! Finite-difference gradient checks for the backward kernels that consume
//! stashed feature maps — conv, linear, batch-norm and LRN — the four ops
//! whose stash traffic Gist targets. Each check builds the scalar loss
//! `L = sum(forward(x) * r)` for a fixed random projection `r`, so the
//! analytic gradient is just `backward(..., dy = r)`, and compares it
//! element-wise against central differences accumulated in f64.
//!
//! A second group feeds hostile f32 values (NaN, infinities, subnormals,
//! extreme normals) through the same forward/backward pairs: finite
//! differences are meaningless there, but the kernels must still return
//! shape-correct tensors without panicking.

use gist_tensor::ops::conv::{self, ConvParams};
use gist_tensor::ops::lrn::{self, LrnParams};
use gist_tensor::ops::{batchnorm, linear};
use gist_tensor::{Shape, Tensor};
use gist_testkit::prop::{boxed, just, map, one_of, vec_of, Strategy};
use gist_testkit::Runner;

/// Property cases per op. Finite differences cost two forwards per
/// parameter, so this stays modest; seeds still vary every case.
const CASES: u32 = 8;
const EPS: f32 = 1e-2;
const TOL: f64 = 2e-2;

fn tame_tensor(shape: Shape, lo: f32, hi: f32) -> impl Strategy<Value = Tensor> {
    let n = shape.numel();
    map(vec_of(lo..hi, n..n + 1), move |v| Tensor::from_vec(shape, v).unwrap())
}

/// `L = sum(y * r)`, accumulated in f64 so the loss itself adds no f32
/// cancellation noise on top of the kernels'.
fn loss(y: &Tensor, r: &Tensor) -> f64 {
    y.data().iter().zip(r.data()).map(|(a, b)| f64::from(*a) * f64::from(*b)).sum()
}

/// Central-difference gradient of `f` w.r.t. every element of `param`.
fn fd_grad(param: &Tensor, f: impl Fn(&Tensor) -> f64) -> Vec<f64> {
    (0..param.numel())
        .map(|i| {
            let mut p = param.clone();
            p.data_mut()[i] += EPS;
            let lp = f(&p);
            p.data_mut()[i] -= 2.0 * EPS;
            let lm = f(&p);
            (lp - lm) / (2.0 * f64::from(EPS))
        })
        .collect()
}

fn assert_grads_close(analytic: &Tensor, fd: &[f64], what: &str) {
    assert_eq!(analytic.numel(), fd.len(), "{what}: gradient length");
    for (i, (a, f)) in analytic.data().iter().zip(fd).enumerate() {
        let a = f64::from(*a);
        let denom = a.abs().max(f.abs()).max(0.1);
        assert!(
            (a - f).abs() / denom < TOL,
            "{what}[{i}]: analytic {a:.6} vs finite-difference {f:.6}"
        );
    }
}

#[test]
fn conv_backward_matches_finite_differences() {
    let p = ConvParams::new(3, 1, 1);
    let xs = tame_tensor(Shape::nchw(1, 2, 5, 5), -1.5, 1.5);
    let ws = tame_tensor(Shape::nchw(2, 2, 3, 3), -0.8, 0.8);
    let bs = tame_tensor(Shape::vector(2), -0.5, 0.5);
    Runner::new("conv_backward_fd").cases(CASES).run(&(xs, ws, bs), |(x, w, b)| {
        let y = conv::forward(x, w, Some(b), p).unwrap();
        let r = gist_tensor::init::uniform(y.shape(), -1.0, 1.0, 9);
        let grads = conv::backward(x, w, &r, p).unwrap();
        assert_grads_close(
            &grads.dx,
            &fd_grad(x, |xp| loss(&conv::forward(xp, w, Some(b), p).unwrap(), &r)),
            "conv dx",
        );
        assert_grads_close(
            &grads.dw,
            &fd_grad(w, |wp| loss(&conv::forward(x, wp, Some(b), p).unwrap(), &r)),
            "conv dw",
        );
        assert_grads_close(
            &grads.db,
            &fd_grad(b, |bp| loss(&conv::forward(x, w, Some(bp), p).unwrap(), &r)),
            "conv db",
        );
    });
}

#[test]
fn linear_backward_matches_finite_differences() {
    let xs = tame_tensor(Shape::matrix(3, 6), -1.5, 1.5);
    let ws = tame_tensor(Shape::matrix(4, 6), -0.8, 0.8);
    Runner::new("linear_backward_fd").cases(CASES).run(&(xs, ws), |(x, w)| {
        let y = linear::forward(x, w, None).unwrap();
        let r = gist_tensor::init::uniform(y.shape(), -1.0, 1.0, 9);
        let grads = linear::backward(x, w, &r).unwrap();
        assert_grads_close(
            &grads.dx,
            &fd_grad(x, |xp| loss(&linear::forward(xp, w, None).unwrap(), &r)),
            "linear dx",
        );
        assert_grads_close(
            &grads.dw,
            &fd_grad(w, |wp| loss(&linear::forward(x, wp, None).unwrap(), &r)),
            "linear dw",
        );
        // db = column sums of dy, independent of x and w; differentiate the
        // biased forward w.r.t. a zero bias instead.
        let b = Tensor::zeros(Shape::vector(4));
        assert_grads_close(
            &grads.db,
            &fd_grad(&b, |bp| loss(&linear::forward(x, w, Some(bp)).unwrap(), &r)),
            "linear db",
        );
    });
}

#[test]
fn batchnorm_backward_matches_finite_differences() {
    let eps = 1e-5;
    let xs = tame_tensor(Shape::nchw(2, 2, 3, 3), -2.0, 2.0);
    let gs = tame_tensor(Shape::vector(2), 0.5, 1.5);
    let bs = tame_tensor(Shape::vector(2), -0.5, 0.5);
    Runner::new("batchnorm_backward_fd").cases(CASES).run(&(xs, gs, bs), |(x, g, b)| {
        let (y, cache) = batchnorm::forward(x, g, b, eps).unwrap();
        let r = gist_tensor::init::uniform(y.shape(), -1.0, 1.0, 9);
        let grads = batchnorm::backward(x, g, &cache, &r).unwrap();
        // dx flows through the batch statistics too: the finite-difference
        // loss recomputes mean and variance for every perturbation.
        assert_grads_close(
            &grads.dx,
            &fd_grad(x, |xp| loss(&batchnorm::forward(xp, g, b, eps).unwrap().0, &r)),
            "batchnorm dx",
        );
        assert_grads_close(
            &grads.dgamma,
            &fd_grad(g, |gp| loss(&batchnorm::forward(x, gp, b, eps).unwrap().0, &r)),
            "batchnorm dgamma",
        );
        assert_grads_close(
            &grads.dbeta,
            &fd_grad(b, |bp| loss(&batchnorm::forward(x, g, bp, eps).unwrap().0, &r)),
            "batchnorm dbeta",
        );
    });
}

#[test]
fn lrn_backward_matches_finite_differences() {
    // AlexNet's alpha (1e-4) makes the cross-channel term numerically
    // invisible to finite differences; a large alpha exercises it for real.
    let p = LrnParams { size: 3, alpha: 0.5, beta: 0.75, k: 2.0 };
    let xs = tame_tensor(Shape::nchw(1, 4, 3, 3), -1.5, 1.5);
    Runner::new("lrn_backward_fd").cases(CASES).run(&xs, |x| {
        let y = lrn::forward(x, p).unwrap();
        let r = gist_tensor::init::uniform(y.shape(), -1.0, 1.0, 9);
        let dx = lrn::backward(x, &r, p).unwrap();
        assert_grads_close(
            &dx,
            &fd_grad(x, |xp| loss(&lrn::forward(xp, p).unwrap(), &r)),
            "lrn dx",
        );
    });
}

// ---- Hostile-input robustness ----------------------------------------

/// f32 values including adversarial bit patterns: NaN, both infinities,
/// both zeros, subnormals, and extreme normals.
fn hostile_f32() -> impl Strategy<Value = f32> {
    one_of(vec![
        boxed(-2.0f32..2.0),
        boxed(just(0.0f32)),
        boxed(just(-0.0f32)),
        boxed(just(f32::NAN)),
        boxed(just(f32::INFINITY)),
        boxed(just(f32::NEG_INFINITY)),
        boxed(just(f32::MIN_POSITIVE)),
        boxed(just(f32::MIN_POSITIVE / 2.0)),
        boxed(just(f32::MAX)),
        boxed(just(f32::MIN)),
    ])
}

fn hostile_tensor(shape: Shape) -> impl Strategy<Value = Tensor> {
    let n = shape.numel();
    map(vec_of(hostile_f32(), n..n + 1), move |v| Tensor::from_vec(shape, v).unwrap())
}

/// Backward kernels on hostile inputs never panic and always produce
/// gradients of the right shapes. (Values may be NaN/Inf — finite
/// differences cannot judge them — but the kernels must stay total.)
#[test]
fn backward_kernels_survive_hostile_inputs() {
    let p = ConvParams::new(3, 1, 1);
    let lp = LrnParams::alexnet();
    let xs = hostile_tensor(Shape::nchw(1, 2, 5, 5));
    let ws = hostile_tensor(Shape::nchw(2, 2, 3, 3));
    Runner::new("backward_hostile").cases(64).run(&(xs, ws), |(x, w)| {
        let dy = gist_tensor::init::uniform(p.out_shape(x.shape(), 2), -1.0, 1.0, 3);
        let g = conv::backward(x, w, &dy, p).unwrap();
        assert_eq!(g.dx.shape(), x.shape());
        assert_eq!(g.dw.shape(), w.shape());
        assert_eq!(g.db.numel(), 2);

        let flat = Tensor::from_vec(Shape::matrix(5, 10), x.data().to_vec()).unwrap();
        let wm = Tensor::from_vec(Shape::matrix(2, 10), w.data()[..20].to_vec()).unwrap();
        let dym = gist_tensor::init::uniform(Shape::matrix(5, 2), -1.0, 1.0, 3);
        let lg = linear::backward(&flat, &wm, &dym).unwrap();
        assert_eq!(lg.dx.shape(), flat.shape());
        assert_eq!(lg.dw.shape(), wm.shape());

        let gamma = Tensor::from_vec(Shape::vector(2), vec![1.0, 1.0]).unwrap();
        let beta = Tensor::zeros(Shape::vector(2));
        let dyx = gist_tensor::init::uniform(x.shape(), -1.0, 1.0, 3);
        let (_, cache) = batchnorm::forward(x, &gamma, &beta, 1e-5).unwrap();
        let bg = batchnorm::backward(x, &gamma, &cache, &dyx).unwrap();
        assert_eq!(bg.dx.shape(), x.shape());
        assert_eq!(bg.dgamma.numel(), 2);
        assert_eq!(bg.dbeta.numel(), 2);

        let ld = lrn::backward(x, &dyx, lp).unwrap();
        assert_eq!(ld.shape(), x.shape());
    });
}
