//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary inputs, independent of the specific values.
//! Each property runs 64 generated cases, matching the proptest-era count.

use gist_tensor::ops::conv::{self, ConvParams};
use gist_tensor::ops::pool::{self, PoolParams};
use gist_tensor::ops::{elementwise, linear, relu, softmax};
use gist_tensor::{Shape, Tensor};
use gist_testkit::prop::{map, vec_of, Strategy};
use gist_testkit::Runner;

const CASES: u32 = 64;

fn small_tensor(n: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    map(vec_of(-10.0f32..10.0, n * c * h * w..n * c * h * w + 1), move |v| {
        Tensor::from_vec(Shape::nchw(n, c, h, w), v).unwrap()
    })
}

/// ReLU is idempotent and its output non-negative.
#[test]
fn relu_idempotent() {
    Runner::new("relu_idempotent").cases(CASES).run(&small_tensor(1, 2, 4, 4), |x| {
        let y = relu::forward(x);
        assert!(y.data().iter().all(|&v| v >= 0.0));
        assert_eq!(relu::forward(&y), y);
    });
}

/// Convolution is linear in its input: conv(a+b) = conv(a) + conv(b).
#[test]
fn conv_is_linear_in_input() {
    Runner::new("conv_is_linear_in_input").cases(CASES).run(
        &(small_tensor(1, 2, 5, 5), small_tensor(1, 2, 5, 5)),
        |(a, b)| {
            let w = gist_tensor::init::uniform(Shape::nchw(3, 2, 3, 3), -1.0, 1.0, 7);
            let p = ConvParams::new(3, 1, 1);
            let ya = conv::forward(a, &w, None, p).unwrap();
            let yb = conv::forward(b, &w, None, p).unwrap();
            let yab = conv::forward(&a.add(b).unwrap(), &w, None, p).unwrap();
            let sum = ya.add(&yb).unwrap();
            assert!(yab.max_abs_diff(&sum) < 1e-3);
        },
    );
}

/// Max pooling commutes with adding a constant (max is translation-
/// equivariant) for pad-free geometries.
#[test]
fn maxpool_translation_equivariant() {
    Runner::new("maxpool_translation_equivariant").cases(CASES).run(
        &(small_tensor(1, 1, 6, 6), -5.0f32..5.0),
        |(x, shift)| {
            let p = PoolParams::new(2, 2, 0);
            let base = pool::maxpool_forward(x, p).unwrap();
            let mut shifted = x.clone();
            for v in shifted.data_mut() {
                *v += shift;
            }
            let shifted_out = pool::maxpool_forward(&shifted, p).unwrap();
            for (a, b) in base.y.data().iter().zip(shifted_out.y.data()) {
                assert!((a + shift - b).abs() < 1e-4);
            }
        },
    );
}

/// Max-pool backward conserves gradient mass for non-overlapping
/// windows: every dY element lands on exactly one dX position.
#[test]
fn maxpool_backward_conserves_mass() {
    Runner::new("maxpool_backward_conserves_mass").cases(CASES).run(
        &small_tensor(1, 2, 4, 4),
        |x| {
            let p = PoolParams::new(2, 2, 0);
            let out = pool::maxpool_forward(x, p).unwrap();
            let dy = gist_tensor::init::uniform(out.y.shape(), -1.0, 1.0, 3);
            let dx = pool::maxpool_backward(x.shape(), &out.argmax, &dy, p).unwrap();
            let sum_dy: f32 = dy.data().iter().sum();
            let sum_dx: f32 = dx.data().iter().sum();
            assert!((sum_dy - sum_dx).abs() < 1e-3);
        },
    );
}

/// Average-pool backward also conserves gradient mass (pad-free).
#[test]
fn avgpool_backward_conserves_mass() {
    Runner::new("avgpool_backward_conserves_mass").cases(CASES).run(
        &small_tensor(1, 1, 4, 4),
        |x| {
            let p = PoolParams::new(2, 2, 0);
            let y = pool::avgpool_forward(x, p).unwrap();
            let dy = gist_tensor::init::uniform(y.shape(), -1.0, 1.0, 5);
            let dx = pool::avgpool_backward(x.shape(), &dy, p).unwrap();
            let sum_dy: f32 = dy.data().iter().sum();
            let sum_dx: f32 = dx.data().iter().sum();
            assert!((sum_dy - sum_dx).abs() < 1e-3);
        },
    );
}

/// Softmax outputs a probability distribution and never NaNs, even for
/// extreme logits.
#[test]
fn softmax_is_a_distribution() {
    Runner::new("softmax_is_a_distribution").cases(CASES).run(
        &vec_of(-100.0f32..100.0, 8..9),
        |v| {
            let t = Tensor::from_vec(Shape::matrix(2, 4), v.clone()).unwrap();
            let p = softmax::softmax(&t);
            assert!(p.data().iter().all(|x| x.is_finite() && *x >= 0.0));
            for row in p.data().chunks(4) {
                let s: f32 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        },
    );
}

/// Cross-entropy gradient rows sum to ~0 (softmax minus one-hot).
#[test]
fn cross_entropy_gradient_rows_sum_to_zero() {
    Runner::new("cross_entropy_gradient_rows_sum_to_zero").cases(CASES).run(
        &(vec_of(-5.0f32..5.0, 12..13), vec_of(0usize..4, 3..4)),
        |(v, labels)| {
            let t = Tensor::from_vec(Shape::matrix(3, 4), v.clone()).unwrap();
            let out = softmax::cross_entropy(&t, labels).unwrap();
            for row in out.dlogits.data().chunks(4) {
                let s: f32 = row.iter().sum();
                assert!(s.abs() < 1e-5);
            }
        },
    );
}

/// Linear layer respects scalar homogeneity: f(k*x) = k*f(x) (no bias).
#[test]
fn linear_homogeneous() {
    Runner::new("linear_homogeneous").cases(CASES).run(
        &(small_tensor(2, 1, 1, 6), -3.0f32..3.0),
        |(x, k)| {
            let w = gist_tensor::init::uniform(Shape::matrix(4, 6), -1.0, 1.0, 9);
            let y = linear::forward(x, &w, None).unwrap();
            let mut kx = x.clone();
            for v in kx.data_mut() {
                *v *= k;
            }
            let ky = linear::forward(&kx, &w, None).unwrap();
            for (a, b) in y.data().iter().zip(ky.data()) {
                assert!((a * k - b).abs() < 1e-2);
            }
        },
    );
}

/// concat_backward(concat_forward(xs)) recovers each input exactly.
#[test]
fn concat_roundtrip() {
    Runner::new("concat_roundtrip").cases(CASES).run(
        &(small_tensor(1, 2, 3, 3), small_tensor(1, 3, 3, 3), small_tensor(1, 1, 3, 3)),
        |(a, b, c)| {
            let y = elementwise::concat_forward(&[a, b, c]).unwrap();
            let parts =
                elementwise::concat_backward(&y, &[a.shape(), b.shape(), c.shape()]).unwrap();
            assert_eq!(&parts[0], a);
            assert_eq!(&parts[1], b);
            assert_eq!(&parts[2], c);
        },
    );
}
