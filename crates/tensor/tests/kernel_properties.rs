//! Property-based tests for the tensor kernels: algebraic identities that
//! must hold for arbitrary inputs, independent of the specific values.

use gist_tensor::ops::conv::{self, ConvParams};
use gist_tensor::ops::pool::{self, PoolParams};
use gist_tensor::ops::{elementwise, linear, relu, softmax};
use gist_tensor::{Shape, Tensor};
use proptest::prelude::*;

fn small_tensor(n: usize, c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, n * c * h * w)
        .prop_map(move |v| Tensor::from_vec(Shape::nchw(n, c, h, w), v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ReLU is idempotent and its output non-negative.
    #[test]
    fn relu_idempotent(x in small_tensor(1, 2, 4, 4)) {
        let y = relu::forward(&x);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(relu::forward(&y), y);
    }

    /// Convolution is linear in its input: conv(a+b) = conv(a) + conv(b).
    #[test]
    fn conv_is_linear_in_input(
        a in small_tensor(1, 2, 5, 5),
        b in small_tensor(1, 2, 5, 5),
    ) {
        let w = gist_tensor::init::uniform(Shape::nchw(3, 2, 3, 3), -1.0, 1.0, 7);
        let p = ConvParams::new(3, 1, 1);
        let ya = conv::forward(&a, &w, None, p).unwrap();
        let yb = conv::forward(&b, &w, None, p).unwrap();
        let yab = conv::forward(&a.add(&b).unwrap(), &w, None, p).unwrap();
        let sum = ya.add(&yb).unwrap();
        prop_assert!(yab.max_abs_diff(&sum) < 1e-3);
    }

    /// Max pooling commutes with adding a constant (max is translation-
    /// equivariant) for pad-free geometries.
    #[test]
    fn maxpool_translation_equivariant(x in small_tensor(1, 1, 6, 6), shift in -5.0f32..5.0) {
        let p = PoolParams::new(2, 2, 0);
        let base = pool::maxpool_forward(&x, p).unwrap();
        let mut shifted = x.clone();
        for v in shifted.data_mut() { *v += shift; }
        let shifted_out = pool::maxpool_forward(&shifted, p).unwrap();
        for (a, b) in base.y.data().iter().zip(shifted_out.y.data()) {
            prop_assert!((a + shift - b).abs() < 1e-4);
        }
    }

    /// Max-pool backward conserves gradient mass for non-overlapping
    /// windows: every dY element lands on exactly one dX position.
    #[test]
    fn maxpool_backward_conserves_mass(x in small_tensor(1, 2, 4, 4)) {
        let p = PoolParams::new(2, 2, 0);
        let out = pool::maxpool_forward(&x, p).unwrap();
        let dy = gist_tensor::init::uniform(out.y.shape(), -1.0, 1.0, 3);
        let dx = pool::maxpool_backward(x.shape(), &out.argmax, &dy, p).unwrap();
        let sum_dy: f32 = dy.data().iter().sum();
        let sum_dx: f32 = dx.data().iter().sum();
        prop_assert!((sum_dy - sum_dx).abs() < 1e-3);
    }

    /// Average-pool backward also conserves gradient mass (pad-free).
    #[test]
    fn avgpool_backward_conserves_mass(x in small_tensor(1, 1, 4, 4)) {
        let p = PoolParams::new(2, 2, 0);
        let y = pool::avgpool_forward(&x, p).unwrap();
        let dy = gist_tensor::init::uniform(y.shape(), -1.0, 1.0, 5);
        let dx = pool::avgpool_backward(x.shape(), &dy, p).unwrap();
        let sum_dy: f32 = dy.data().iter().sum();
        let sum_dx: f32 = dx.data().iter().sum();
        prop_assert!((sum_dy - sum_dx).abs() < 1e-3);
    }

    /// Softmax outputs a probability distribution and never NaNs, even for
    /// extreme logits.
    #[test]
    fn softmax_is_a_distribution(v in prop::collection::vec(-100.0f32..100.0, 8)) {
        let t = Tensor::from_vec(Shape::matrix(2, 4), v).unwrap();
        let p = softmax::softmax(&t);
        prop_assert!(p.data().iter().all(|x| x.is_finite() && *x >= 0.0));
        for row in p.data().chunks(4) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// Cross-entropy gradient rows sum to ~0 (softmax minus one-hot).
    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero(
        v in prop::collection::vec(-5.0f32..5.0, 12),
        labels in prop::collection::vec(0usize..4, 3),
    ) {
        let t = Tensor::from_vec(Shape::matrix(3, 4), v).unwrap();
        let out = softmax::cross_entropy(&t, &labels).unwrap();
        for row in out.dlogits.data().chunks(4) {
            let s: f32 = row.iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// Linear layer respects scalar homogeneity: f(k*x) = k*f(x) (no bias).
    #[test]
    fn linear_homogeneous(x in small_tensor(2, 1, 1, 6), k in -3.0f32..3.0) {
        let w = gist_tensor::init::uniform(Shape::matrix(4, 6), -1.0, 1.0, 9);
        let y = linear::forward(&x, &w, None).unwrap();
        let mut kx = x.clone();
        for v in kx.data_mut() { *v *= k; }
        let ky = linear::forward(&kx, &w, None).unwrap();
        for (a, b) in y.data().iter().zip(ky.data()) {
            prop_assert!((a * k - b).abs() < 1e-2);
        }
    }

    /// concat_backward(concat_forward(xs)) recovers each input exactly.
    #[test]
    fn concat_roundtrip(
        a in small_tensor(1, 2, 3, 3),
        b in small_tensor(1, 3, 3, 3),
        c in small_tensor(1, 1, 3, 3),
    ) {
        let y = elementwise::concat_forward(&[&a, &b, &c]).unwrap();
        let parts = elementwise::concat_backward(&y, &[a.shape(), b.shape(), c.shape()]).unwrap();
        prop_assert_eq!(parts[0].clone(), a);
        prop_assert_eq!(parts[1].clone(), b);
        prop_assert_eq!(parts[2].clone(), c);
    }
}
