//! The dense `f32` tensor container.

use crate::{Shape, TensorError};

/// A dense, row-major NCHW tensor of `f32` values.
///
/// This is the "full fidelity" representation the paper's forward pass always
/// operates on; Gist's encodings replace it only during the temporal gap
/// between a feature map's forward and backward uses.
///
/// ```
/// use gist_tensor::{Shape, Tensor};
/// let t = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
/// assert_eq!(t.numel(), 8);
/// assert!(t.data().iter().all(|&v| v == 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor { shape, data: vec![0.0; shape.numel()] }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor { shape, data: vec![value; shape.numel()] }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at NCHW coordinates.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Sets the element at NCHW coordinates.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.shape.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Reinterprets the tensor under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(mut self, shape: Shape) -> Result<Self, TensorError> {
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Fraction of elements that are exactly zero.
    ///
    /// ReLU-induced sparsity of stashed feature maps is the enabling
    /// observation behind the paper's SSDC encoding (Section III-A).
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: other.shape });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Tensor { shape: self.shape, data })
    }

    /// In-place `self += scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: other.shape });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Maximum absolute elementwise difference between two tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff requires equal shapes");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let err = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 1 });
    }

    #[test]
    fn at_and_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::nchw(2, 3, 4, 5));
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.at(1, 2, 3, 4), 7.5);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let t = Tensor::from_vec(Shape::vector(4), vec![0.0, 1.0, 0.0, -2.0]).unwrap();
        assert_eq!(t.sparsity(), 0.5);
        assert_eq!(Tensor::zeros(Shape::vector(3)).sparsity(), 1.0);
    }

    #[test]
    fn add_and_add_scaled() {
        let a = Tensor::from_vec(Shape::vector(3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0]);
        let mut c = a.clone();
        c.add_scaled(&b, -0.1).unwrap();
        assert_eq!(c.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::vector(3));
        let b = Tensor::zeros(Shape::vector(4));
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = t.reshape(Shape::matrix(2, 2)).unwrap();
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::zeros(Shape::vector(4)).reshape(Shape::vector(5)).is_err());
    }
}
