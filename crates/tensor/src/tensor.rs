//! The dense `f32` tensor container: an owned buffer or a view over
//! shared [`Storage`].

use crate::{Shape, Storage, TensorError};
use std::sync::Arc;

/// Backing buffer of a [`Tensor`]: either a private heap vector or a view
/// into shared [`Storage`] at a fixed element offset.
enum Buf {
    Owned(Vec<f32>),
    View { storage: Arc<Storage>, offset: usize },
}

/// A dense, row-major NCHW tensor of `f32` values.
///
/// This is the "full fidelity" representation the paper's forward pass always
/// operates on; Gist's encodings replace it only during the temporal gap
/// between a feature map's forward and backward uses.
///
/// A tensor is either *owned* (its elements live in a private `Vec<f32>`)
/// or a *view* (`Shape` + offset over a shared [`Storage`] slab placed by
/// the `gist-memory` offset planner). All kernels operate on both through
/// [`Tensor::data`]/[`Tensor::data_mut`]; views make the planned arena
/// executable. Cloning a view deep-copies it into an owned tensor, so
/// `clone()` always yields an independent buffer.
///
/// ```
/// use gist_tensor::{Shape, Tensor};
/// let t = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
/// assert_eq!(t.numel(), 8);
/// assert!(t.data().iter().all(|&v| v == 0.0));
/// ```
pub struct Tensor {
    shape: Shape,
    buf: Buf,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        Tensor { shape, buf: Buf::Owned(vec![0.0; shape.numel()]) }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: Shape, value: f32) -> Self {
        Tensor { shape, buf: Buf::Owned(vec![value; shape.numel()]) }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, buf: Buf::Owned(data) })
    }

    /// Creates a view of `shape.numel()` elements of `storage` starting at
    /// element `offset`. The caller (in practice the arena executor) is
    /// responsible for ensuring concurrently-live views are disjoint — see
    /// the [`Storage`] aliasing discipline.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the range does not fit in
    /// the storage.
    pub fn view(storage: Arc<Storage>, offset: usize, shape: Shape) -> Result<Self, TensorError> {
        let needed = offset + shape.numel();
        if needed > storage.len() {
            return Err(TensorError::LengthMismatch { expected: needed, actual: storage.len() });
        }
        Ok(Tensor { shape, buf: Buf::View { storage, offset } })
    }

    /// Whether this tensor is a view over shared storage (as opposed to
    /// owning a private buffer).
    pub fn is_view(&self) -> bool {
        matches!(self.buf, Buf::View { .. })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        match &self.buf {
            Buf::Owned(v) => v,
            // SAFETY: the view's range was bounds-checked at construction;
            // exclusive access for the `&self` lifetime follows from the
            // arena discipline (plan-verified disjointness of live views).
            Buf::View { storage, offset } => unsafe { storage.slice(*offset, self.shape.numel()) },
        }
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        match &mut self.buf {
            Buf::Owned(v) => v,
            // SAFETY: as in `data`, plus `&mut self` rules out aliasing
            // through *this* tensor; other views are disjoint by plan.
            Buf::View { storage, offset } => unsafe {
                storage.slice_mut(*offset, self.shape.numel())
            },
        }
    }

    /// Copies all elements from `src` (same element count; shapes may
    /// differ, e.g. a flattened view of a 4-D map).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn copy_from(&mut self, src: &Tensor) {
        assert_eq!(
            self.shape.numel(),
            src.shape.numel(),
            "copy_from requires equal element counts"
        );
        self.data_mut().copy_from_slice(src.data());
    }

    /// Consumes the tensor, returning its elements as an owned vector
    /// (copies if this is a view).
    pub fn into_vec(self) -> Vec<f32> {
        match self.buf {
            Buf::Owned(v) => v,
            // SAFETY: as in `data`.
            Buf::View { storage, offset } => unsafe {
                storage.slice(offset, self.shape.numel()).to_vec()
            },
        }
    }

    /// Element at NCHW coordinates.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data()[self.shape.index(n, c, h, w)]
    }

    /// Sets the element at NCHW coordinates.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.shape.index(n, c, h, w);
        self.data_mut()[i] = v;
    }

    /// Reinterprets the tensor under a new shape with the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the volumes differ.
    pub fn reshape(mut self, shape: Shape) -> Result<Self, TensorError> {
        if shape.numel() != self.shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.shape.numel(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Fraction of elements that are exactly zero.
    ///
    /// ReLU-induced sparsity of stashed feature maps is the enabling
    /// observation behind the paper's SSDC encoding (Section III-A).
    pub fn sparsity(&self) -> f64 {
        let data = self.data();
        if data.is_empty() {
            return 0.0;
        }
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / data.len() as f64
    }

    /// Elementwise sum of two same-shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: other.shape });
        }
        let data = self.data().iter().zip(other.data()).map(|(a, b)| a + b).collect();
        Ok(Tensor { shape: self.shape, buf: Buf::Owned(data) })
    }

    /// In-place `self += scale * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: other.shape });
        }
        let src = other.data();
        for (a, b) in self.data_mut().iter_mut().zip(src) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Maximum absolute elementwise difference between two tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff requires equal shapes");
        self.data().iter().zip(other.data()).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }
}

impl Clone for Tensor {
    /// Deep copy: cloning a view detaches it into an owned tensor so the
    /// clone survives the underlying arena region's reuse.
    fn clone(&self) -> Self {
        Tensor { shape: self.shape, buf: Buf::Owned(self.data().to_vec()) }
    }
}

impl PartialEq for Tensor {
    /// Value equality: same shape and identical elements (bitwise f32 `==`),
    /// regardless of owned-vs-view backing.
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data() == other.data()
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("view", &self.is_view())
            .field("data", &self.data())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let err = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0]).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 4, actual: 1 });
    }

    #[test]
    fn at_and_set_roundtrip() {
        let mut t = Tensor::zeros(Shape::nchw(2, 3, 4, 5));
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.at(1, 2, 3, 4), 7.5);
        assert_eq!(t.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let t = Tensor::from_vec(Shape::vector(4), vec![0.0, 1.0, 0.0, -2.0]).unwrap();
        assert_eq!(t.sparsity(), 0.5);
        assert_eq!(Tensor::zeros(Shape::vector(3)).sparsity(), 1.0);
    }

    #[test]
    fn add_and_add_scaled() {
        let a = Tensor::from_vec(Shape::vector(3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![10.0, 20.0, 30.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0]);
        let mut c = a.clone();
        c.add_scaled(&b, -0.1).unwrap();
        assert_eq!(c.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(Shape::vector(3));
        let b = Tensor::zeros(Shape::vector(4));
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let m = t.reshape(Shape::matrix(2, 2)).unwrap();
        assert_eq!(m.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert!(Tensor::zeros(Shape::vector(4)).reshape(Shape::vector(5)).is_err());
    }

    #[test]
    fn views_share_storage_and_clone_detaches() {
        let s = Storage::new(8);
        let mut v = Tensor::view(Arc::clone(&s), 2, Shape::vector(4)).unwrap();
        assert!(v.is_view());
        v.data_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        // A second view of the same region reads the same elements.
        let v2 = Tensor::view(Arc::clone(&s), 2, Shape::vector(4)).unwrap();
        assert_eq!(v2.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v, v2);
        // Clone detaches: later writes through the view don't affect it.
        let c = v2.clone();
        assert!(!c.is_view());
        v.set(0, 0, 0, 0, 99.0);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v2.data(), &[99.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn view_rejects_out_of_range() {
        let s = Storage::new(4);
        let err = Tensor::view(s, 2, Shape::vector(4)).unwrap_err();
        assert_eq!(err, TensorError::LengthMismatch { expected: 6, actual: 4 });
    }

    #[test]
    fn view_copy_from_and_into_vec() {
        let s = Storage::new(4);
        let src = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let mut v = Tensor::view(Arc::clone(&s), 0, Shape::vector(4)).unwrap();
        // Equal numel, different shape: allowed by design.
        v.copy_from(&src);
        assert_eq!(v.into_vec(), vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn view_reshape_keeps_backing() {
        let s = Storage::new(6);
        let v = Tensor::view(Arc::clone(&s), 0, Shape::vector(6)).unwrap();
        let m = v.reshape(Shape::matrix(2, 3)).unwrap();
        assert!(m.is_view());
        assert_eq!(m.shape(), Shape::matrix(2, 3));
    }
}
