//! Tensor shapes.
//!
//! All feature maps in this reproduction are 4-dimensional NCHW tensors
//! (minibatch, channels, height, width); weights and fully-connected
//! activations use the same container with degenerate spatial dimensions.

use std::fmt;

/// The shape of a tensor, up to four dimensions, stored NCHW.
///
/// ```
/// use gist_tensor::Shape;
/// let s = Shape::nchw(64, 3, 224, 224);
/// assert_eq!(s.numel(), 64 * 3 * 224 * 224);
/// assert_eq!(s.bytes_fp32(), s.numel() * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: [usize; 4],
}

impl Shape {
    /// Creates a 4-D NCHW shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape { dims: [n, c, h, w] }
    }

    /// Creates a 2-D shape `(rows, cols)`, stored as `(rows, cols, 1, 1)`.
    ///
    /// This is the layout used for fully-connected activations and for the
    /// 2-D matrices that SSDC reshapes before CSR conversion.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape { dims: [rows, cols, 1, 1] }
    }

    /// Creates a 1-D shape of `len` elements.
    pub fn vector(len: usize) -> Self {
        Shape { dims: [len, 1, 1, 1] }
    }

    /// Minibatch dimension.
    pub fn n(&self) -> usize {
        self.dims[0]
    }

    /// Channel dimension.
    pub fn c(&self) -> usize {
        self.dims[1]
    }

    /// Height dimension.
    pub fn h(&self) -> usize {
        self.dims[2]
    }

    /// Width dimension.
    pub fn w(&self) -> usize {
        self.dims[3]
    }

    /// All four dimensions in NCHW order.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size in bytes when stored as single-precision floats, the baseline
    /// stash format in the paper.
    pub fn bytes_fp32(&self) -> usize {
        self.numel() * 4
    }

    /// Collapses the shape to a 2-D `(rows, cols)` view with `rows = n` and
    /// `cols = c*h*w`.
    ///
    /// The paper notes that "most DNN frameworks store data structures in an
    /// n-dimensional matrix, which can always be collapsed into two
    /// dimensions"; SSDC operates on this view.
    pub fn as_matrix(&self) -> (usize, usize) {
        (self.dims[0], self.dims[1] * self.dims[2] * self.dims[3])
    }

    /// Linear index of element `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any coordinate is out of range.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3]);
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{}x{}x{}]", self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nchw_accessors() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!((s.n(), s.c(), s.h(), s.w()), (2, 3, 4, 5));
        assert_eq!(s.numel(), 120);
        assert_eq!(s.bytes_fp32(), 480);
    }

    #[test]
    fn matrix_view_collapses_chw() {
        let s = Shape::nchw(64, 96, 55, 55);
        assert_eq!(s.as_matrix(), (64, 96 * 55 * 55));
    }

    #[test]
    fn index_is_row_major_nchw() {
        let s = Shape::nchw(2, 2, 2, 2);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 2);
        assert_eq!(s.index(0, 1, 0, 0), 4);
        assert_eq!(s.index(1, 0, 0, 0), 8);
        assert_eq!(s.index(1, 1, 1, 1), 15);
    }

    #[test]
    fn vector_and_matrix_constructors() {
        assert_eq!(Shape::vector(7).numel(), 7);
        assert_eq!(Shape::matrix(3, 9).as_matrix(), (3, 9));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::nchw(1, 2, 3, 4).to_string(), "[1x2x3x4]");
    }
}
