//! Shared flat `f32` storage backing tensor views.
//!
//! A [`Storage`] is one contiguous slab of `f32` cells that many
//! [`crate::Tensor`] *views* index into at fixed offsets. It exists so that
//! the `gist-memory` offset plan can be executed rather than merely
//! accounted: the arena runtime allocates one `Storage` per training step
//! plan and hands out views at the planned offsets.
//!
//! # Safety discipline
//!
//! `Storage` hands out overlapping-capable slices through `unsafe`
//! accessors, mirroring the `SendPtr` discipline in `gist-par`: the *safe*
//! surface lives in the callers (the arena executor), which uphold the
//! contract structurally —
//!
//! 1. every view's `[offset, offset + len)` range comes from an offset plan
//!    whose pairwise disjointness for temporally-overlapping buffers has
//!    been verified (`OffsetPlan::verify`), and
//! 2. regions whose lifetimes *do* overlap in plan time are only written
//!    while no reader of an aliased range is live, because the arena
//!    executor serializes the compute of each wave.
//!
//! Violating either rule is undefined behavior, which is exactly why the
//! accessors are `unsafe fn` and every call site records its justification.

use std::cell::UnsafeCell;
use std::sync::Arc;

/// A contiguous, shareable slab of `f32` cells.
///
/// See the module docs for the aliasing discipline. The slab's length is
/// fixed at construction; contents start zeroed.
pub struct Storage {
    cell: UnsafeCell<Box<[f32]>>,
}

// SAFETY: `Storage` is a raw slab; cross-thread access is governed by the
// callers' plan-verified disjointness discipline (module docs). This mirrors
// `SendPtr` in gist-par: the unsafe accessors carry the actual proof burden.
unsafe impl Send for Storage {}
unsafe impl Sync for Storage {}

impl Storage {
    /// Allocates a zero-filled slab of `len` elements, shared behind an
    /// [`Arc`] so many views can reference it.
    pub fn new(len: usize) -> Arc<Self> {
        Arc::new(Storage { cell: UnsafeCell::new(vec![0.0f32; len].into_boxed_slice()) })
    }

    /// Number of `f32` cells in the slab.
    pub fn len(&self) -> usize {
        // SAFETY: reading the slice length never touches cell contents.
        unsafe { (&*self.cell.get()).len() }
    }

    /// Whether the slab holds zero cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-only slice of `[offset, offset + len)`.
    ///
    /// # Safety
    ///
    /// For the returned lifetime, no mutable slice overlapping the range may
    /// exist or be created (see the module-level discipline).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the slab.
    pub unsafe fn slice(&self, offset: usize, len: usize) -> &[f32] {
        // SAFETY: in-bounds per the assert below; aliasing per caller contract.
        unsafe {
            let slab: &[f32] = &*self.cell.get();
            assert!(offset + len <= slab.len(), "storage slice out of bounds");
            &slab[offset..offset + len]
        }
    }

    /// Mutable slice of `[offset, offset + len)`.
    ///
    /// # Safety
    ///
    /// For the returned lifetime, no other slice (shared or mutable)
    /// overlapping the range may exist or be created (see the module-level
    /// discipline).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the slab.
    #[allow(clippy::mut_from_ref)] // interior mutability is this type's purpose
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [f32] {
        // SAFETY: in-bounds per the assert below; aliasing per caller contract.
        unsafe {
            let slab: &mut [f32] = &mut *self.cell.get();
            assert!(offset + len <= slab.len(), "storage slice_mut out of bounds");
            &mut slab[offset..offset + len]
        }
    }

    /// Fills `[offset, offset + len)` with `value` — used by the arena's
    /// debug poisoning of dead regions.
    ///
    /// # Safety
    ///
    /// Same contract as [`Storage::slice_mut`].
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the slab.
    pub unsafe fn fill(&self, offset: usize, len: usize, value: f32) {
        // SAFETY: forwarded caller contract.
        unsafe {
            self.slice_mut(offset, len).fill(value);
        }
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Storage").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_storage_is_zeroed() {
        let s = Storage::new(8);
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        // SAFETY: no other slices exist.
        let all = unsafe { s.slice(0, 8) };
        assert!(all.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn disjoint_slices_read_back_writes() {
        let s = Storage::new(8);
        // SAFETY: the two ranges are disjoint and no reads overlap them.
        unsafe {
            s.slice_mut(0, 4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            s.fill(4, 4, 9.0);
        }
        // SAFETY: no mutable slices remain.
        unsafe {
            assert_eq!(s.slice(0, 4), &[1.0, 2.0, 3.0, 4.0]);
            assert_eq!(s.slice(4, 4), &[9.0; 4]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        let s = Storage::new(4);
        // SAFETY: bounds are checked before any reference is formed.
        let _ = unsafe { s.slice(2, 3) };
    }

    #[test]
    fn empty_storage() {
        let s = Storage::new(0);
        assert!(s.is_empty());
        // SAFETY: zero-length slice of an empty slab.
        assert_eq!(unsafe { s.slice(0, 0) }.len(), 0);
    }
}
