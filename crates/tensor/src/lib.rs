#![warn(missing_docs)]

//! # gist-tensor
//!
//! A small, self-contained CPU tensor library used as the numerical substrate
//! for the Gist reproduction. It provides an NCHW [`Tensor`] of `f32` values,
//! a [`Shape`] type, deterministic random initialization, and the forward and
//! backward kernels needed by convolutional image-classification networks:
//! convolution, max/average pooling, ReLU, fully-connected layers, batch
//! normalization, softmax with cross-entropy, and the elementwise/structural
//! ops (residual add, concatenation) required by Inception and ResNet.
//!
//! The kernels are written for clarity and testability rather than peak
//! throughput: the paper's performance results are reproduced through the
//! analytic model in `gist-perf`, while this crate establishes *value-level*
//! correctness (e.g., that Gist's lossless encodings are bit-exact and that
//! delayed precision reduction does not perturb the forward pass).
//!
//! ```
//! use gist_tensor::{Tensor, Shape};
//!
//! let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, -2.0, 3.0, -4.0]).unwrap();
//! let y = gist_tensor::ops::relu::forward(&x);
//! assert_eq!(y.data(), &[1.0, 0.0, 3.0, 0.0]);
//! ```

pub mod init;
pub mod ops;
pub mod scratch;
pub mod shape;
pub mod storage;
pub mod tensor;

pub use scratch::{ScratchLease, ScratchPool};
pub use shape::Shape;
pub use storage::Storage;
pub use tensor::Tensor;

/// Errors produced by tensor construction and kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the number of elements implied
    /// by the shape.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Shape,
        /// Shape of the right-hand operand.
        right: Shape,
    },
    /// A kernel was invoked with a shape it does not support.
    UnsupportedShape(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::UnsupportedShape(msg) => write!(f, "unsupported shape: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}
