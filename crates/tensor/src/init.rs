//! Deterministic weight initialization.
//!
//! Experiments in the paper depend on training dynamics (e.g., ReLU sparsity
//! ramping up over the first few hundred minibatches in Figure 14), so weight
//! initialization here is seeded and reproducible.

use crate::{Shape, Tensor};
use gist_testkit::Rng;

/// Uniform Xavier/Glorot initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: Shape, fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..shape.numel()).map(|_| rng.gen_range(-a..a)).collect();
    Tensor::from_vec(shape, data).expect("generated data matches shape")
}

/// Kaiming/He initialization for ReLU networks: `N(0, sqrt(2/fan_in))`,
/// approximated by a uniform with matched variance (`U(-b, b)` with
/// `b = sqrt(6/fan_in)`).
pub fn kaiming_uniform(shape: Shape, fan_in: usize, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let b = (6.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..shape.numel()).map(|_| rng.gen_range(-b..b)).collect();
    Tensor::from_vec(shape, data).expect("generated data matches shape")
}

/// Uniform values in `[lo, hi)`, seeded.
pub fn uniform(shape: Shape, lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = Rng::seed_from_u64(seed);
    let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(shape, data).expect("generated data matches shape")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_is_deterministic_per_seed() {
        let s = Shape::nchw(4, 3, 3, 3);
        let a = xavier_uniform(s, 27, 36, 42);
        let b = xavier_uniform(s, 27, 36, 42);
        let c = xavier_uniform(s, 27, 36, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn init_is_byte_identical_across_calls_and_pinned() {
        // Guards the PRNG swap (rand::StdRng -> gist-testkit xoshiro256++)
        // against silent distribution drift: two calls with the same seed
        // must agree bit-for-bit, and the exact bit patterns are pinned so
        // any change to the generator or the sampling path is loud.
        let xa = xavier_uniform(Shape::vector(4), 27, 36, 42);
        let xb = xavier_uniform(Shape::vector(4), 27, 36, 42);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&xa), bits(&xb));
        assert_eq!(bits(&xa), vec![0x3e46_a632, 0xbde5_0516, 0x3e98_eabf, 0x3dfe_3efc]);

        let ka = kaiming_uniform(Shape::vector(4), 24, 7);
        let kb = kaiming_uniform(Shape::vector(4), 24, 7);
        assert_eq!(bits(&ka), bits(&kb));
        assert_eq!(bits(&ka), vec![0xbee3_a7cc, 0xbea7_e070, 0x3e5e_cc44, 0xbd95_1308]);
    }

    #[test]
    fn xavier_bounds_hold() {
        let s = Shape::vector(1000);
        let t = xavier_uniform(s, 50, 50, 1);
        let a = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|&v| v > -a && v < a));
    }

    #[test]
    fn kaiming_bounds_hold() {
        let t = kaiming_uniform(Shape::vector(1000), 24, 7);
        let b = (6.0f32 / 24.0).sqrt();
        assert!(t.data().iter().all(|&v| v > -b && v < b));
    }

    #[test]
    fn uniform_respects_range() {
        let t = uniform(Shape::vector(512), 0.25, 0.75, 9);
        assert!(t.data().iter().all(|&v| (0.25..0.75).contains(&v)));
    }
}
