//! A reusable pool of backward scratch buffers.
//!
//! The conv/linear backward kernels need per-image scratch (im2col columns,
//! matmul temporaries, per-task reduction partials) that the original code
//! heap-allocated on every call — thousands of allocations per training
//! step at steady state. A [`ScratchPool`] recycles those buffers across
//! calls: a lease pops a retired buffer (or allocates on first use), hands
//! it out zero-filled, and returns it to the pool on drop.
//!
//! Determinism: a lease is always zero-filled before use, so *which*
//! recycled buffer a task receives can never affect numerics — results stay
//! bit-identical at every thread count even though concurrent tasks race on
//! the pool's free list. Only the [`ScratchPool::counters`] diagnostics are
//! interleaving-dependent.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A shared, thread-safe pool of recycled `f32` scratch buffers.
#[derive(Debug, Default)]
pub struct ScratchPool {
    bufs: Mutex<Vec<Vec<f32>>>,
    leases: AtomicU64,
    misses: AtomicU64,
}

impl ScratchPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a zero-filled buffer of `len` elements. The buffer returns to
    /// the pool when the lease drops.
    pub fn lease(&self, len: usize) -> ScratchLease<'_> {
        self.leases.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.bufs.lock().expect("scratch pool lock").pop().unwrap_or_default();
        if buf.capacity() < len {
            // The pool could not cover this lease without touching the
            // allocator — the signal `counters` reports.
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        buf.clear();
        buf.resize(len, 0.0);
        ScratchLease { pool: self, buf }
    }

    /// Cumulative `(leases, misses)`: total buffers handed out and how many
    /// of those had to grow or allocate. The difference is the number of
    /// heap allocations the pool absorbed. Diagnostic only — under
    /// concurrent leasing the split depends on task interleaving.
    pub fn counters(&self) -> (u64, u64) {
        (self.leases.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// An exclusively-held scratch buffer; dereferences to `[f32]` and returns
/// its storage to the pool on drop.
#[derive(Debug)]
pub struct ScratchLease<'p> {
    pool: &'p ScratchPool,
    buf: Vec<f32>,
}

impl Deref for ScratchLease<'_> {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchLease<'_> {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchLease<'_> {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.pool.bufs.lock().expect("scratch pool lock").push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_zero_filled_even_after_reuse() {
        let pool = ScratchPool::new();
        {
            let mut a = pool.lease(8);
            a.fill(7.5);
        }
        let b = pool.lease(4);
        assert!(b.iter().all(|&v| v == 0.0), "recycled lease must be zeroed");
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn pool_absorbs_allocations() {
        let pool = ScratchPool::new();
        drop(pool.lease(16));
        drop(pool.lease(16));
        drop(pool.lease(8));
        let (leases, misses) = pool.counters();
        assert_eq!(leases, 3);
        assert_eq!(misses, 1, "only the first lease should allocate");
    }

    #[test]
    fn growth_counts_as_miss() {
        let pool = ScratchPool::new();
        drop(pool.lease(4));
        drop(pool.lease(64));
        assert_eq!(pool.counters(), (2, 2));
    }
}
