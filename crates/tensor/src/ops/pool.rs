//! Max and average pooling.
//!
//! The max-pool forward pass records, for every output element, the *window
//! index* (0..window_area) of the input element that won the max. This is the
//! paper's `Y→X map` (Section IV-A): with it, the backward pass needs neither
//! the stashed input `X` nor output `Y`, and each entry fits in 4 bits for
//! windows up to 3x3.

use crate::{Shape, Tensor, TensorError};

/// Geometry of a pooling operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolParams {
    /// Window height and width.
    pub window: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl PoolParams {
    /// Creates pooling parameters.
    pub fn new(window: usize, stride: usize, pad: usize) -> Self {
        PoolParams { window, stride, pad }
    }

    /// Output spatial size for an input of `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.window) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.window) / self.stride + 1;
        (oh, ow)
    }

    /// Output shape for an NCHW input shape.
    pub fn out_shape(&self, x: Shape) -> Shape {
        let (oh, ow) = self.out_hw(x.h(), x.w());
        Shape::nchw(x.n(), x.c(), oh, ow)
    }
}

/// Result of a max-pool forward pass: the output and the Y→X window-index map.
#[derive(Debug, Clone, PartialEq)]
pub struct MaxPoolOutput {
    /// Pooled output `Y`.
    pub y: Tensor,
    /// For each output element, the linear index within its pooling window
    /// (`row * window + col`) of the selected input element. One entry per
    /// output element; values are `< window * window` so they fit in 4 bits
    /// for windows up to 3x3.
    pub argmax: Vec<u8>,
}

/// Rejects degenerate pooling geometry before any output-shape arithmetic.
fn check_geometry(kind: &str, s: Shape, p: PoolParams) -> Result<(), TensorError> {
    if p.window == 0
        || p.stride == 0
        || s.h() + 2 * p.pad < p.window
        || s.w() + 2 * p.pad < p.window
    {
        return Err(TensorError::UnsupportedShape(format!(
            "{kind} window {}x{} stride {} pad {} on {s}",
            p.window, p.window, p.stride, p.pad
        )));
    }
    Ok(())
}

/// Max-pool forward pass.
///
/// Padding positions are treated as `-inf` (never selected unless the whole
/// window is padding, which valid geometries do not produce).
///
/// # Errors
///
/// Returns [`TensorError::UnsupportedShape`] if the window does not fit.
pub fn maxpool_forward(x: &Tensor, p: PoolParams) -> Result<MaxPoolOutput, TensorError> {
    check_geometry("maxpool", x.shape(), p)?;
    let mut y = Tensor::zeros(p.out_shape(x.shape()));
    let argmax = maxpool_forward_into(x, p, &mut y)?;
    Ok(MaxPoolOutput { y, argmax })
}

/// Max-pool forward pass writing into a preallocated output (e.g. an arena
/// view), returning the Y→X window-index map. Every element of `y` is
/// overwritten; bit-exact with [`maxpool_forward`].
///
/// # Errors
///
/// Returns [`TensorError::UnsupportedShape`] if the window does not fit, or
/// [`TensorError::ShapeMismatch`] if `y` has the wrong shape.
pub fn maxpool_forward_into(
    x: &Tensor,
    p: PoolParams,
    y: &mut Tensor,
) -> Result<Vec<u8>, TensorError> {
    let s = x.shape();
    check_geometry("maxpool", s, p)?;
    let out = p.out_shape(s);
    if y.shape() != out {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: out });
    }
    let mut argmax = vec![0u8; out.numel()];
    let mut oi = 0usize;
    for n in 0..s.n() {
        for c in 0..s.c() {
            for oh in 0..out.h() {
                for ow in 0..out.w() {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_widx = 0u8;
                    for kh in 0..p.window {
                        for kw in 0..p.window {
                            let ih = (oh * p.stride + kh) as isize - p.pad as isize;
                            let iw = (ow * p.stride + kw) as isize - p.pad as isize;
                            if ih < 0 || iw < 0 || ih >= s.h() as isize || iw >= s.w() as isize {
                                continue;
                            }
                            let v = x.at(n, c, ih as usize, iw as usize);
                            if v > best {
                                best = v;
                                best_widx = (kh * p.window + kw) as u8;
                            }
                        }
                    }
                    y.data_mut()[oi] = best;
                    argmax[oi] = best_widx;
                    oi += 1;
                }
            }
        }
    }
    Ok(argmax)
}

/// Max-pool backward pass using only the Y→X map (no stashed `X` or `Y`).
///
/// Routes each `dY` element to the input position its window index recorded.
/// Overlapping windows accumulate.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `dy` does not match the output
/// shape implied by `x_shape` and `p`.
pub fn maxpool_backward(
    x_shape: Shape,
    argmax: &[u8],
    dy: &Tensor,
    p: PoolParams,
) -> Result<Tensor, TensorError> {
    let mut dx = Tensor::zeros(x_shape);
    maxpool_backward_into(x_shape, argmax, dy, p, &mut dx)?;
    Ok(dx)
}

/// [`maxpool_backward`] landing `dx` in a preallocated buffer (e.g. a
/// planned arena side region). Every element of `dx` is overwritten — the
/// buffer is zero-filled, then the scatter accumulates — so a poisoned
/// view is fine. Bit-exact with [`maxpool_backward`].
///
/// # Errors
///
/// As for [`maxpool_backward`], plus a shape mismatch on `dx`.
pub fn maxpool_backward_into(
    x_shape: Shape,
    argmax: &[u8],
    dy: &Tensor,
    p: PoolParams,
    dx: &mut Tensor,
) -> Result<(), TensorError> {
    let out = p.out_shape(x_shape);
    if dy.shape() != out {
        return Err(TensorError::ShapeMismatch { left: dy.shape(), right: out });
    }
    if dx.shape() != x_shape {
        return Err(TensorError::ShapeMismatch { left: dx.shape(), right: x_shape });
    }
    dx.data_mut().fill(0.0);
    let mut oi = 0usize;
    for n in 0..x_shape.n() {
        for c in 0..x_shape.c() {
            for oh in 0..out.h() {
                for ow in 0..out.w() {
                    let widx = argmax[oi] as usize;
                    let kh = widx / p.window;
                    let kw = widx % p.window;
                    let ih = (oh * p.stride + kh) as isize - p.pad as isize;
                    let iw = (ow * p.stride + kw) as isize - p.pad as isize;
                    if ih >= 0
                        && iw >= 0
                        && (ih as usize) < x_shape.h()
                        && (iw as usize) < x_shape.w()
                    {
                        let idx = x_shape.index(n, c, ih as usize, iw as usize);
                        dx.data_mut()[idx] += dy.data()[oi];
                    }
                    oi += 1;
                }
            }
        }
    }
    Ok(())
}

/// Average-pool forward pass (used by Inception and ResNet heads).
///
/// # Errors
///
/// Returns [`TensorError::UnsupportedShape`] if the window does not fit.
pub fn avgpool_forward(x: &Tensor, p: PoolParams) -> Result<Tensor, TensorError> {
    check_geometry("avgpool", x.shape(), p)?;
    let mut y = Tensor::zeros(p.out_shape(x.shape()));
    avgpool_forward_into(x, p, &mut y)?;
    Ok(y)
}

/// Average-pool forward pass writing into a preallocated output (e.g. an
/// arena view). Every element of `y` is overwritten; bit-exact with
/// [`avgpool_forward`].
///
/// # Errors
///
/// As for [`avgpool_forward`], plus a shape mismatch on `y`.
pub fn avgpool_forward_into(x: &Tensor, p: PoolParams, y: &mut Tensor) -> Result<(), TensorError> {
    let s = x.shape();
    check_geometry("avgpool", s, p)?;
    let out = p.out_shape(s);
    if y.shape() != out {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: out });
    }
    let area = (p.window * p.window) as f32;
    let mut oi = 0usize;
    for n in 0..s.n() {
        for c in 0..s.c() {
            for oh in 0..out.h() {
                for ow in 0..out.w() {
                    let mut acc = 0.0;
                    for kh in 0..p.window {
                        for kw in 0..p.window {
                            let ih = (oh * p.stride + kh) as isize - p.pad as isize;
                            let iw = (ow * p.stride + kw) as isize - p.pad as isize;
                            if ih < 0 || iw < 0 || ih >= s.h() as isize || iw >= s.w() as isize {
                                continue;
                            }
                            acc += x.at(n, c, ih as usize, iw as usize);
                        }
                    }
                    y.data_mut()[oi] = acc / area;
                    oi += 1;
                }
            }
        }
    }
    Ok(())
}

/// Average-pool backward pass: distributes `dY / area` over each window.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `dy` does not match the implied
/// output shape.
pub fn avgpool_backward(x_shape: Shape, dy: &Tensor, p: PoolParams) -> Result<Tensor, TensorError> {
    let mut dx = Tensor::zeros(x_shape);
    avgpool_backward_into(x_shape, dy, p, &mut dx)?;
    Ok(dx)
}

/// [`avgpool_backward`] landing `dx` in a preallocated buffer (e.g. a
/// planned arena side region). Every element of `dx` is overwritten — the
/// buffer is zero-filled, then the spread accumulates — so a poisoned view
/// is fine. Bit-exact with [`avgpool_backward`].
///
/// # Errors
///
/// As for [`avgpool_backward`], plus a shape mismatch on `dx`.
pub fn avgpool_backward_into(
    x_shape: Shape,
    dy: &Tensor,
    p: PoolParams,
    dx: &mut Tensor,
) -> Result<(), TensorError> {
    let out = p.out_shape(x_shape);
    if dy.shape() != out {
        return Err(TensorError::ShapeMismatch { left: dy.shape(), right: out });
    }
    if dx.shape() != x_shape {
        return Err(TensorError::ShapeMismatch { left: dx.shape(), right: x_shape });
    }
    dx.data_mut().fill(0.0);
    let area = (p.window * p.window) as f32;
    let mut oi = 0usize;
    for n in 0..x_shape.n() {
        for c in 0..x_shape.c() {
            for oh in 0..out.h() {
                for ow in 0..out.w() {
                    let g = dy.data()[oi] / area;
                    for kh in 0..p.window {
                        for kw in 0..p.window {
                            let ih = (oh * p.stride + kh) as isize - p.pad as isize;
                            let iw = (ow * p.stride + kw) as isize - p.pad as isize;
                            if ih >= 0
                                && iw >= 0
                                && (ih as usize) < x_shape.h()
                                && (iw as usize) < x_shape.w()
                            {
                                let idx = x_shape.index(n, c, ih as usize, iw as usize);
                                dx.data_mut()[idx] += g;
                            }
                        }
                    }
                    oi += 1;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4(h: usize, w: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::nchw(1, 1, h, w), v).unwrap()
    }

    #[test]
    fn maxpool_2x2_stride2() {
        let x = t4(4, 4, (0..16).map(|i| i as f32).collect());
        let out = maxpool_forward(&x, PoolParams::new(2, 2, 0)).unwrap();
        assert_eq!(out.y.data(), &[5.0, 7.0, 13.0, 15.0]);
        // max is always bottom-right of the window: index 3
        assert_eq!(out.argmax, vec![3, 3, 3, 3]);
    }

    #[test]
    fn maxpool_backward_routes_by_argmax() {
        let x = t4(2, 2, vec![1.0, 9.0, 3.0, 2.0]);
        let p = PoolParams::new(2, 2, 0);
        let out = maxpool_forward(&x, p).unwrap();
        assert_eq!(out.y.data(), &[9.0]);
        assert_eq!(out.argmax, vec![1]); // top-right
        let dy = t4(1, 1, vec![5.0]);
        let dx = maxpool_backward(x.shape(), &out.argmax, &dy, p).unwrap();
        assert_eq!(dx.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_overlapping_windows_accumulate() {
        // 3x3 input, window 2, stride 1 -> 2x2 output; the centre-ish max is
        // shared by multiple windows.
        let x = t4(3, 3, vec![0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0]);
        let p = PoolParams::new(2, 1, 0);
        let out = maxpool_forward(&x, p).unwrap();
        assert_eq!(out.y.data(), &[9.0, 9.0, 9.0, 9.0]);
        let dy = t4(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = maxpool_backward(x.shape(), &out.argmax, &dy, p).unwrap();
        assert_eq!(dx.at(0, 0, 1, 1), 4.0);
        assert_eq!(dx.data().iter().sum::<f32>(), 4.0);
    }

    #[test]
    fn argmax_fits_in_4_bits_for_3x3_windows() {
        let x = crate::init::uniform(Shape::nchw(2, 3, 9, 9), -1.0, 1.0, 3);
        let out = maxpool_forward(&x, PoolParams::new(3, 2, 0)).unwrap();
        assert!(out.argmax.iter().all(|&a| a < 9), "3x3 window indices < 9 < 16");
    }

    #[test]
    fn maxpool_with_padding() {
        let x = t4(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // window 3 pad 1 stride 2 -> 1x1 output covering everything
        let out = maxpool_forward(&x, PoolParams::new(3, 2, 1)).unwrap();
        assert_eq!(out.y.data(), &[4.0]);
    }

    #[test]
    fn avgpool_roundtrip() {
        let x = t4(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let p = PoolParams::new(2, 2, 0);
        let y = avgpool_forward(&x, p).unwrap();
        assert_eq!(y.data(), &[2.5]);
        let dy = t4(1, 1, vec![4.0]);
        let dx = avgpool_backward(x.shape(), &dy, p).unwrap();
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let x = t4(2, 2, vec![0.0; 4]);
        assert!(maxpool_forward(&x, PoolParams::new(5, 2, 0)).is_err());
        assert!(avgpool_forward(&x, PoolParams::new(0, 1, 0)).is_err());
    }

    #[test]
    fn out_shape_math() {
        let p = PoolParams::new(3, 2, 0);
        assert_eq!(p.out_hw(224, 224), (111, 111));
        let p2 = PoolParams::new(2, 2, 0);
        assert_eq!(p2.out_hw(224, 224), (112, 112));
    }
}
