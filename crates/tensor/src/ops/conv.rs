//! 2-D convolution via im2col + dense matmul, with a direct (im2col-free)
//! gist-simd kernel for the 3×3/stride-1 hot case.
//!
//! The convolution backward pass needs its stashed *input* feature map to
//! compute weight gradients (Figure 4(d) in the paper) — which is why
//! Binarize cannot apply to ReLU→Conv pairs and SSDC exists.

use crate::ops::matmul::{matmul, matmul_a_bt_into, matmul_at_b_into};
use crate::{ScratchPool, Shape, Tensor, TensorError};
use gist_par::{parallel_chunks_mut, parallel_reduce, SendPtr};

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvParams {
    /// Kernel height/width (square kernels).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl ConvParams {
    /// Creates convolution parameters.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        ConvParams { kernel, stride, pad }
    }

    /// Output spatial size for input `(h, w)`.
    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Output shape for an NCHW input with `out_channels` filters.
    pub fn out_shape(&self, x: Shape, out_channels: usize) -> Shape {
        let (oh, ow) = self.out_hw(x.h(), x.w());
        Shape::nchw(x.n(), out_channels, oh, ow)
    }
}

/// Lowers one image of `x` into an im2col matrix of shape
/// `[C*K*K, OH*OW]` (row-major), zero-filling padding.
fn im2col(x: &Tensor, n: usize, p: ConvParams, oh: usize, ow: usize) -> Vec<f32> {
    let s = x.shape();
    let (c, k) = (s.c(), p.kernel);
    let mut cols = vec![0.0f32; c * k * k * oh * ow];
    im2col_into(x, n, p, oh, ow, &mut cols);
    cols
}

/// [`im2col`] writing into a preallocated, **zero-filled** buffer (padding
/// cells are skipped, so the caller must provide zeros — a fresh
/// [`ScratchPool`] lease qualifies).
fn im2col_into(x: &Tensor, n: usize, p: ConvParams, oh: usize, ow: usize, cols: &mut [f32]) {
    let s = x.shape();
    let (c, k) = (s.c(), p.kernel);
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    for ci in 0..c {
        for kh in 0..k {
            for kw in 0..k {
                let row = (ci * k + kh) * k + kw;
                for ohi in 0..oh {
                    let ih = (ohi * p.stride + kh) as isize - p.pad as isize;
                    if ih < 0 || ih >= s.h() as isize {
                        continue;
                    }
                    for owi in 0..ow {
                        let iw = (owi * p.stride + kw) as isize - p.pad as isize;
                        if iw < 0 || iw >= s.w() as isize {
                            continue;
                        }
                        cols[row * oh * ow + ohi * ow + owi] =
                            x.at(n, ci, ih as usize, iw as usize);
                    }
                }
            }
        }
    }
}

/// Scatters an im2col matrix back into one image's `dx` slice (transpose
/// of [`im2col`]), accumulating overlaps.
fn col2im_slice(cols: &[f32], dst: &mut [f32], s: Shape, p: ConvParams, oh: usize, ow: usize) {
    let (c, k) = (s.c(), p.kernel);
    for ci in 0..c {
        for kh in 0..k {
            for kw in 0..k {
                let row = (ci * k + kh) * k + kw;
                for ohi in 0..oh {
                    let ih = (ohi * p.stride + kh) as isize - p.pad as isize;
                    if ih < 0 || ih >= s.h() as isize {
                        continue;
                    }
                    for owi in 0..ow {
                        let iw = (owi * p.stride + kw) as isize - p.pad as isize;
                        if iw < 0 || iw >= s.w() as isize {
                            continue;
                        }
                        let idx = (ci * s.h() + ih as usize) * s.w() + iw as usize;
                        dst[idx] += cols[row * oh * ow + ohi * ow + owi];
                    }
                }
            }
        }
    }
}

/// Convolution forward pass.
///
/// `x` is `[N, C, H, W]`, `weight` is `[K, C, R, R]` (K filters), `bias` is
/// `[K]` or `None`.
///
/// # Errors
///
/// Returns an error if channel counts or kernel geometry are inconsistent.
pub fn forward(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: ConvParams,
) -> Result<Tensor, TensorError> {
    check_forward_shapes(x, weight, bias, p)?;
    let mut y = Tensor::zeros(p.out_shape(x.shape(), weight.shape().n()));
    forward_into(x, weight, bias, p, &mut y)?;
    Ok(y)
}

/// Validates forward-pass operand shapes before any output-shape arithmetic.
fn check_forward_shapes(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: ConvParams,
) -> Result<(), TensorError> {
    let s = x.shape();
    let ws = weight.shape();
    if ws.c() != s.c() || ws.h() != p.kernel || ws.w() != p.kernel {
        return Err(TensorError::UnsupportedShape(format!(
            "weight {ws} incompatible with input {s} kernel {}",
            p.kernel
        )));
    }
    if s.h() + 2 * p.pad < p.kernel || s.w() + 2 * p.pad < p.kernel {
        return Err(TensorError::UnsupportedShape(format!(
            "kernel {} larger than padded input {s}",
            p.kernel
        )));
    }
    let out_c = ws.n();
    if let Some(b) = bias {
        if b.numel() != out_c {
            return Err(TensorError::ShapeMismatch {
                left: b.shape(),
                right: Shape::vector(out_c),
            });
        }
    }
    Ok(())
}

/// Forward pass writing into a preallocated output (e.g. an arena view).
/// Every element of `y` is overwritten; bit-exact with [`forward`].
///
/// # Errors
///
/// As for [`forward`], plus a shape mismatch on `y`.
pub fn forward_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: ConvParams,
    y: &mut Tensor,
) -> Result<(), TensorError> {
    check_forward_shapes(x, weight, bias, p)?;
    let s = x.shape();
    let ws = weight.shape();
    let out_c = ws.n();
    let out = p.out_shape(s, out_c);
    if y.shape() != out {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: out });
    }
    let (oh, ow) = (out.h(), out.w());
    let ckk = s.c() * p.kernel * p.kernel;
    let per_image = out_c * oh * ow;
    let per_x = s.c() * s.h() * s.w();
    // Images are independent; fan the minibatch out over the gist-par pool.
    // (Nested matmul dispatch degrades to serial inside each image task.)
    if p.kernel == 3 && p.stride == 1 {
        // The VGG/ResNet hot case: gist-simd's im2col-free direct kernel.
        // Bit-exact with the lowering below — each output element sees the
        // identical tap sequence — so taking this branch never changes
        // results, only skips materialising the [C*9, OH*OW] matrix.
        let cs = gist_simd::Conv3Shape { c: s.c(), h: s.h(), w: s.w(), out_c, pad: p.pad };
        parallel_chunks_mut(y.data_mut(), per_image, |n, dst| {
            let xn = &x.data()[n * per_x..(n + 1) * per_x];
            gist_simd::conv3x3s1_image(xn, weight.data(), bias.map(|b| b.data()), cs, dst);
        });
        return Ok(());
    }
    parallel_chunks_mut(y.data_mut(), per_image, |n, dst| {
        let cols = im2col(x, n, p, oh, ow);
        // weight viewed as [out_c, ckk] * cols [ckk, oh*ow]
        let prod = matmul(weight.data(), &cols, out_c, ckk, oh * ow);
        dst.copy_from_slice(&prod);
        if let Some(b) = bias {
            for k in 0..out_c {
                let bk = b.data()[k];
                for v in &mut dst[k * oh * ow..(k + 1) * oh * ow] {
                    *v += bk;
                }
            }
        }
    });
    Ok(())
}

/// Gradients produced by the convolution backward pass.
#[derive(Debug, Clone)]
pub struct ConvGrads {
    /// Gradient w.r.t. the input feature map.
    pub dx: Tensor,
    /// Gradient w.r.t. the weights.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias (per output channel).
    pub db: Tensor,
}

/// Convolution backward pass.
///
/// Requires the stashed input `x` — the dependency that motivates SSDC.
///
/// # Errors
///
/// Returns an error if `dy`'s shape is inconsistent with `x`/`weight`/`p`.
pub fn backward(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    p: ConvParams,
) -> Result<ConvGrads, TensorError> {
    backward_with(x, weight, dy, p, &ScratchPool::new())
}

/// [`backward`] with its per-image scratch (im2col columns, the dW/dX
/// matmul temporaries, and the per-task reduction partials) leased from a
/// caller-owned [`ScratchPool`] instead of heap-allocated per call.
/// Bit-exact with [`backward`] at every thread count: leases are
/// zero-filled, and the merge tree is unchanged.
///
/// # Errors
///
/// As for [`backward`].
pub fn backward_with(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    p: ConvParams,
    scratch: &ScratchPool,
) -> Result<ConvGrads, TensorError> {
    let mut dx = Tensor::zeros(x.shape());
    let (dw, db) = backward_with_into(x, weight, dy, p, scratch, &mut dx)?;
    Ok(ConvGrads { dx, dw, db })
}

/// [`backward_with`] landing `dx` in a preallocated buffer (e.g. a planned
/// arena side region) instead of a fresh allocation; returns `(dw, db)`.
/// Every element of `dx` is overwritten — it is zero-filled first, then
/// accumulated into by the col2im scatter — so a poisoned view is fine.
/// Bit-exact with [`backward_with`].
///
/// # Errors
///
/// As for [`backward`], plus a shape mismatch on `dx`.
pub fn backward_with_into(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    p: ConvParams,
    scratch: &ScratchPool,
    dx: &mut Tensor,
) -> Result<(Tensor, Tensor), TensorError> {
    let s = x.shape();
    let ws = weight.shape();
    let out_c = ws.n();
    let expected = p.out_shape(s, out_c);
    if dy.shape() != expected {
        return Err(TensorError::ShapeMismatch { left: dy.shape(), right: expected });
    }
    if dx.shape() != s {
        return Err(TensorError::ShapeMismatch { left: dx.shape(), right: s });
    }
    let (oh, ow) = (expected.h(), expected.w());
    let ckk = s.c() * p.kernel * p.kernel;
    dx.data_mut().fill(0.0);
    let mut dw = Tensor::zeros(ws);
    let mut db = Tensor::zeros(Shape::vector(out_c));
    let per_dx = s.c() * s.h() * s.w();
    let dx_base = SendPtr::new(dx.data_mut().as_mut_ptr());
    // Images are disjoint in dX, so each task writes its slice directly.
    // Per-image dW/db partials are merged along gist-par's fixed pairwise
    // tree over image indices: the accumulation order depends only on the
    // minibatch size, never on thread count or completion order. (The old
    // scoped-thread version merged per-worker partials in spawn-bucket
    // order, which varied with the core count.)
    let merged = parallel_reduce(
        s.n(),
        1,
        move |range| {
            let dx_ptr = dx_base.get();
            let mut dw_part = scratch.lease(ws.numel());
            let mut db_part = scratch.lease(out_c);
            for n in range {
                let mut cols = scratch.lease(ckk * oh * ow);
                im2col_into(x, n, p, oh, ow, &mut cols);
                let dy_n = &dy.data()[n * out_c * oh * ow..(n + 1) * out_c * oh * ow];
                let mut dwn = scratch.lease(out_c * ckk);
                matmul_a_bt_into(dy_n, &cols, out_c, oh * ow, ckk, &mut dwn);
                for (a, b) in dw_part.iter_mut().zip(dwn.iter()) {
                    *a += b;
                }
                let mut dcols = scratch.lease(ckk * oh * ow);
                matmul_at_b_into(weight.data(), dy_n, ckk, out_c, oh * ow, &mut dcols);
                // SAFETY: image slices of dx are disjoint; dx outlives the
                // dispatch (parallel_reduce blocks until completion).
                let dst = unsafe { std::slice::from_raw_parts_mut(dx_ptr.add(n * per_dx), per_dx) };
                col2im_slice(&dcols, dst, s, p, oh, ow);
                for k in 0..out_c {
                    db_part[k] += dy_n[k * oh * ow..(k + 1) * oh * ow].iter().sum::<f32>();
                }
            }
            (dw_part, db_part)
        },
        |(mut dw_a, mut db_a), (dw_b, db_b)| {
            for (a, b) in dw_a.iter_mut().zip(dw_b.iter()) {
                *a += b;
            }
            for (a, b) in db_a.iter_mut().zip(db_b.iter()) {
                *a += b;
            }
            // Dropping the right-hand partials here returns their buffers
            // to the pool for the next wave of tasks.
            (dw_a, db_a)
        },
    );
    if let Some((dw_sum, db_sum)) = merged {
        dw.data_mut().copy_from_slice(&dw_sum);
        db.data_mut().copy_from_slice(&db_sum);
    }
    Ok((dw, db))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passes_through() {
        // 1x1 kernel with weight 1.0 is identity.
        let x = Tensor::from_vec(Shape::nchw(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let w = Tensor::from_vec(Shape::nchw(1, 1, 1, 1), vec![1.0]).unwrap();
        let y = forward(&x, &w, None, ConvParams::new(1, 1, 0)).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 input, 3x3 sum kernel, no pad -> single output = sum of input.
        let x =
            Tensor::from_vec(Shape::nchw(1, 1, 3, 3), (1..=9).map(|v| v as f32).collect()).unwrap();
        let w = Tensor::full(Shape::nchw(1, 1, 3, 3), 1.0);
        let y = forward(&x, &w, None, ConvParams::new(3, 1, 0)).unwrap();
        assert_eq!(y.data(), &[45.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let x = Tensor::full(Shape::nchw(1, 1, 2, 2), 0.0);
        let w = Tensor::full(Shape::nchw(2, 1, 1, 1), 1.0);
        let b = Tensor::from_vec(Shape::vector(2), vec![0.5, -1.5]).unwrap();
        let y = forward(&x, &w, Some(&b), ConvParams::new(1, 1, 0)).unwrap();
        assert_eq!(y.shape(), Shape::nchw(1, 2, 2, 2));
        assert_eq!(&y.data()[..4], &[0.5; 4]);
        assert_eq!(&y.data()[4..], &[-1.5; 4]);
    }

    #[test]
    fn padding_preserves_spatial_size() {
        let x = Tensor::full(Shape::nchw(2, 3, 8, 8), 1.0);
        let w = Tensor::full(Shape::nchw(4, 3, 3, 3), 0.1);
        let y = forward(&x, &w, None, ConvParams::new(3, 1, 1)).unwrap();
        assert_eq!(y.shape(), Shape::nchw(2, 4, 8, 8));
    }

    /// Numerical gradient check: perturb each input/weight element and compare
    /// against the analytic backward pass.
    #[test]
    fn gradient_check_small_conv() {
        let p = ConvParams::new(3, 1, 1);
        let x = crate::init::uniform(Shape::nchw(1, 2, 4, 4), -1.0, 1.0, 11);
        let w = crate::init::uniform(Shape::nchw(3, 2, 3, 3), -0.5, 0.5, 13);
        let y = forward(&x, &w, None, p).unwrap();
        // loss = sum(y^2)/2, dy = y
        let grads = backward(&x, &w, &y, p).unwrap();
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            let y = forward(x, w, None, p).unwrap();
            y.data().iter().map(|&v| (v as f64) * (v as f64) / 2.0).sum()
        };
        let eps = 1e-3f32;
        for idx in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64);
            let ana = grads.dx.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-2, "dx[{idx}]: num {num} vs ana {ana}");
        }
        for idx in [0usize, 9, 26, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64);
            let ana = grads.dw.data()[idx] as f64;
            assert!((num - ana).abs() < 1e-2, "dw[{idx}]: num {num} vs ana {ana}");
        }
    }

    #[test]
    fn bias_gradient_sums_dy() {
        let p = ConvParams::new(1, 1, 0);
        let x = Tensor::full(Shape::nchw(2, 1, 2, 2), 1.0);
        let w = Tensor::full(Shape::nchw(1, 1, 1, 1), 1.0);
        let dy = Tensor::full(Shape::nchw(2, 1, 2, 2), 0.5);
        let g = backward(&x, &w, &dy, p).unwrap();
        assert_eq!(g.db.data(), &[4.0]); // 8 positions * 0.5
    }

    /// Pins the dW merge order to gist-par's fixed pairwise tree. With
    /// per-image contributions [1e8, 1.0, -1e8] the tree computes
    /// ((1e8 + 1.0) + -1e8) = 0.0 in f32 (the 1.0 is absorbed), while any
    /// reordering — e.g. the old spawn-bucket merge, which on 2 workers
    /// produced (1e8 + -1e8) + 1.0 = 1.0 — yields a different bit pattern.
    #[test]
    fn backward_merge_order_is_fixed_tree() {
        let p = ConvParams::new(1, 1, 0);
        let x = Tensor::full(Shape::nchw(3, 1, 1, 1), 1.0);
        let w = Tensor::full(Shape::nchw(1, 1, 1, 1), 1.0);
        let dy = Tensor::from_vec(Shape::nchw(3, 1, 1, 1), vec![1e8, 1.0, -1e8]).unwrap();
        let reference = backward(&x, &w, &dy, p).unwrap();
        assert_eq!(reference.dw.data(), &[0.0], "dw must follow the fixed pairwise tree");
        for threads in [1usize, 2, 3, 4] {
            let g = gist_par::with_threads(threads, || backward(&x, &w, &dy, p).unwrap());
            assert_eq!(
                g.dw.data()[0].to_bits(),
                reference.dw.data()[0].to_bits(),
                "dw reduction order changed at {threads} threads"
            );
            assert_eq!(g.db.data()[0].to_bits(), reference.db.data()[0].to_bits());
        }
    }

    /// The 3×3/stride-1 forward takes the direct gist-simd kernel; pin it
    /// bit-for-bit against the im2col + matmul lowering it replaced.
    #[test]
    fn direct_3x3_path_matches_im2col_lowering() {
        let p = ConvParams::new(3, 1, 1);
        let x = crate::init::uniform(Shape::nchw(2, 3, 6, 6), -1.0, 1.0, 7);
        let w = crate::init::uniform(Shape::nchw(4, 3, 3, 3), -0.5, 0.5, 9);
        let b = crate::init::uniform(Shape::vector(4), -0.1, 0.1, 21);
        let y = forward(&x, &w, Some(&b), p).unwrap();
        let out = p.out_shape(x.shape(), 4);
        let (oh, ow) = (out.h(), out.w());
        let ckk = 3 * 9;
        let mut expect = Tensor::zeros(out);
        let per_image = 4 * oh * ow;
        for n in 0..2 {
            let cols = im2col(&x, n, p, oh, ow);
            let prod = matmul(w.data(), &cols, 4, ckk, oh * ow);
            let dst = &mut expect.data_mut()[n * per_image..(n + 1) * per_image];
            dst.copy_from_slice(&prod);
            for k in 0..4 {
                let bk = b.data()[k];
                for v in &mut dst[k * oh * ow..(k + 1) * oh * ow] {
                    *v += bk;
                }
            }
        }
        let yb: Vec<u32> = y.data().iter().map(|v| v.to_bits()).collect();
        let eb: Vec<u32> = expect.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(yb, eb, "direct 3x3 kernel must match the im2col lowering");
    }

    #[test]
    fn rejects_channel_mismatch() {
        let x = Tensor::zeros(Shape::nchw(1, 3, 4, 4));
        let w = Tensor::zeros(Shape::nchw(2, 4, 3, 3));
        assert!(forward(&x, &w, None, ConvParams::new(3, 1, 1)).is_err());
    }

    #[test]
    fn conv_params_out_shape() {
        // AlexNet conv1: 224x224, k=11, s=4, pad=2 -> 55x55
        assert_eq!(ConvParams::new(11, 4, 2).out_hw(224, 224), (55, 55));
        // VGG conv: 3x3 s1 p1 preserves
        assert_eq!(ConvParams::new(3, 1, 1).out_hw(112, 112), (112, 112));
    }
}
