//! Inverted dropout with a deterministic, seed-derived keep mask.
//!
//! The mask is a pure function of `(seed, element index)` so that training
//! runs are reproducible across executor modes — a requirement for the
//! bit-exactness tests of Gist's lossless encodings.

use crate::{Tensor, TensorError};

/// Generates the keep mask for `len` elements at keep probability
/// `1 - drop_p`, deterministically from `seed`.
///
/// Uses SplitMix64 per element — cheap, stateless, and identical across
/// runs regardless of iteration order.
pub fn keep_mask(len: usize, drop_p: f32, seed: u64) -> Vec<bool> {
    let threshold = ((1.0 - f64::from(drop_p)) * (u64::MAX as f64)) as u64;
    (0..len)
        .map(|i| {
            let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            z <= threshold
        })
        .collect()
}

/// Forward pass: `y[i] = mask[i] ? x[i] / (1 - p) : 0` (inverted dropout,
/// so inference needs no rescaling).
///
/// # Errors
///
/// Returns an error if the mask length differs from the tensor, or `p` is
/// outside `[0, 1)`.
pub fn forward(x: &Tensor, mask: &[bool], drop_p: f32) -> Result<Tensor, TensorError> {
    if !(0.0..1.0).contains(&drop_p) {
        return Err(TensorError::UnsupportedShape(format!("dropout p {drop_p} outside [0,1)")));
    }
    if mask.len() != x.numel() {
        return Err(TensorError::LengthMismatch { expected: x.numel(), actual: mask.len() });
    }
    let mut y = Tensor::zeros(x.shape());
    forward_into(x, mask, drop_p, &mut y)?;
    Ok(y)
}

/// Forward pass writing into a preallocated output (e.g. an arena view).
/// Every element of `y` is overwritten; bit-exact with [`forward`].
///
/// # Errors
///
/// As for [`forward`], plus a shape mismatch on `y`.
pub fn forward_into(
    x: &Tensor,
    mask: &[bool],
    drop_p: f32,
    y: &mut Tensor,
) -> Result<(), TensorError> {
    if !(0.0..1.0).contains(&drop_p) {
        return Err(TensorError::UnsupportedShape(format!("dropout p {drop_p} outside [0,1)")));
    }
    if mask.len() != x.numel() {
        return Err(TensorError::LengthMismatch { expected: x.numel(), actual: mask.len() });
    }
    if y.shape() != x.shape() {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: x.shape() });
    }
    let scale = 1.0 / (1.0 - drop_p);
    let src = x.data();
    for (i, out) in y.data_mut().iter_mut().enumerate() {
        *out = if mask[i] { src[i] * scale } else { 0.0 };
    }
    Ok(())
}

/// Backward pass: the same mask and scale applied to `dy`.
///
/// # Errors
///
/// As for [`forward`].
pub fn backward(dy: &Tensor, mask: &[bool], drop_p: f32) -> Result<Tensor, TensorError> {
    forward(dy, mask, drop_p)
}

/// [`backward`] landing `dx` in a preallocated buffer (e.g. a planned arena
/// side region). Every element of `dx` is overwritten; bit-exact with
/// [`backward`].
///
/// # Errors
///
/// As for [`backward`], plus a shape mismatch on `dx`.
pub fn backward_into(
    dy: &Tensor,
    mask: &[bool],
    drop_p: f32,
    dx: &mut Tensor,
) -> Result<(), TensorError> {
    forward_into(dy, mask, drop_p, dx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn mask_is_deterministic_and_seed_sensitive() {
        let a = keep_mask(1000, 0.5, 7);
        let b = keep_mask(1000, 0.5, 7);
        let c = keep_mask(1000, 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn keep_rate_approximates_one_minus_p() {
        for p in [0.1f32, 0.5, 0.9] {
            let mask = keep_mask(20_000, p, 3);
            let kept = mask.iter().filter(|&&k| k).count() as f64 / 20_000.0;
            assert!((kept - (1.0 - p as f64)).abs() < 0.02, "p={p}: kept {kept:.3}");
        }
    }

    #[test]
    fn forward_scales_kept_elements() {
        let x = Tensor::full(Shape::vector(4), 2.0);
        let mask = [true, false, true, false];
        let y = forward(&x, &mask, 0.5).unwrap();
        assert_eq!(y.data(), &[4.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    fn backward_uses_same_mask() {
        let dy = Tensor::full(Shape::vector(3), 1.0);
        let mask = [false, true, false];
        let dx = backward(&dy, &mask, 0.2).unwrap();
        assert_eq!(dx.data()[0], 0.0);
        assert!((dx.data()[1] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn expectation_is_preserved() {
        // Inverted dropout: E[y] == x.
        let x = Tensor::full(Shape::vector(50_000), 1.0);
        let mask = keep_mask(x.numel(), 0.3, 11);
        let y = forward(&x, &mask, 0.3).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / y.numel() as f32;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let x = Tensor::zeros(Shape::vector(4));
        assert!(forward(&x, &[true; 3], 0.5).is_err());
        assert!(forward(&x, &[true; 4], 1.0).is_err());
        assert!(forward(&x, &[true; 4], -0.1).is_err());
    }
}
