//! Local Response Normalization (cross-channel), as used by the original
//! AlexNet and NiN.
//!
//! `y[c] = x[c] / (k + alpha/size * sum_{c' in win(c)} x[c']^2)^beta` with a
//! channel window of `size` centred on `c`.

use crate::{Tensor, TensorError};
use gist_par::parallel_chunks_mut;

/// LRN hyperparameters (AlexNet defaults: size 5, alpha 1e-4, beta 0.75,
/// k 2.0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrnParams {
    /// Cross-channel window size.
    pub size: usize,
    /// Scale of the squared-sum term.
    pub alpha: f32,
    /// Exponent.
    pub beta: f32,
    /// Additive constant.
    pub k: f32,
}

impl LrnParams {
    /// AlexNet's published constants.
    pub fn alexnet() -> Self {
        LrnParams { size: 5, alpha: 1e-4, beta: 0.75, k: 2.0 }
    }
}

fn window(c: usize, channels: usize, size: usize) -> (usize, usize) {
    let half = size / 2;
    let lo = c.saturating_sub(half);
    let hi = (c + half).min(channels - 1);
    (lo, hi)
}

/// Per-position squared-sum denominators `s[c] = k + alpha/size * sum x^2`.
fn denominators(x: &Tensor, p: LrnParams) -> Vec<f32> {
    let s = x.shape();
    let mut den = vec![0.0f32; x.numel()];
    let per = s.c() * s.h() * s.w();
    // Each position's window sum is independent; images are contiguous NCHW
    // slices, so fan the minibatch out over the pool with disjoint writes.
    parallel_chunks_mut(&mut den, per, |n, img| {
        for h in 0..s.h() {
            for w in 0..s.w() {
                for c in 0..s.c() {
                    let (lo, hi) = window(c, s.c(), p.size);
                    let mut acc = 0.0;
                    for cc in lo..=hi {
                        let v = x.at(n, cc, h, w);
                        acc += v * v;
                    }
                    img[(c * s.h() + h) * s.w() + w] = p.k + p.alpha / p.size as f32 * acc;
                }
            }
        }
    });
    den
}

/// Forward pass.
///
/// # Errors
///
/// Returns an error if `size` is zero or the input has no channels.
pub fn forward(x: &Tensor, p: LrnParams) -> Result<Tensor, TensorError> {
    let mut y = Tensor::zeros(x.shape());
    forward_into(x, p, &mut y)?;
    Ok(y)
}

/// Forward pass writing into a preallocated output (e.g. an arena view).
/// Every element of `y` is overwritten; bit-exact with [`forward`].
///
/// # Errors
///
/// As for [`forward`], plus a shape mismatch on `y`.
pub fn forward_into(x: &Tensor, p: LrnParams, y: &mut Tensor) -> Result<(), TensorError> {
    if p.size == 0 || x.shape().c() == 0 {
        return Err(TensorError::UnsupportedShape(format!("lrn size {} on {}", p.size, x.shape())));
    }
    if y.shape() != x.shape() {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: x.shape() });
    }
    let den = denominators(x, p);
    parallel_chunks_mut(y.data_mut(), 1 << 14, |ci, chunk| {
        let off = ci * (1 << 14);
        for (j, v) in chunk.iter_mut().enumerate() {
            *v = x.data()[off + j] / den[off + j].powf(p.beta);
        }
    });
    Ok(())
}

/// Backward pass from the stashed input.
///
/// `dx[i] = dy[i]*s[i]^-beta - (2*alpha*beta/size) * x[i] *
///          sum_{c in win(i)} dy[c]*y[c]/s[c]`
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn backward(x: &Tensor, dy: &Tensor, p: LrnParams) -> Result<Tensor, TensorError> {
    let mut dx = Tensor::zeros(x.shape());
    backward_into(x, dy, p, &mut dx)?;
    Ok(dx)
}

/// [`backward`] landing `dx` in a preallocated buffer (e.g. a planned arena
/// side region). Every element of `dx` is overwritten; bit-exact with
/// [`backward`].
///
/// # Errors
///
/// As for [`backward`], plus a shape mismatch on `dx`.
pub fn backward_into(
    x: &Tensor,
    dy: &Tensor,
    p: LrnParams,
    dx: &mut Tensor,
) -> Result<(), TensorError> {
    let s = x.shape();
    if dy.shape() != s {
        return Err(TensorError::ShapeMismatch { left: dy.shape(), right: s });
    }
    if dx.shape() != s {
        return Err(TensorError::ShapeMismatch { left: dx.shape(), right: s });
    }
    let den = denominators(x, p);
    // ratio[c] = dy[c]*y[c]/s[c] = dy[c]*x[c]*s[c]^(-beta-1)
    let mut ratio = vec![0.0f32; x.numel()];
    parallel_chunks_mut(&mut ratio, 1 << 14, |ci, chunk| {
        let off = ci * (1 << 14);
        for (j, v) in chunk.iter_mut().enumerate() {
            let i = off + j;
            *v = dy.data()[i] * x.data()[i] * den[i].powf(-p.beta - 1.0);
        }
    });
    let scale = 2.0 * p.alpha * p.beta / p.size as f32;
    let per = s.c() * s.h() * s.w();
    parallel_chunks_mut(dx.data_mut(), per, |n, img| {
        for h in 0..s.h() {
            for w in 0..s.w() {
                for c in 0..s.c() {
                    let i = s.index(n, c, h, w);
                    let (lo, hi) = window(c, s.c(), p.size);
                    let mut acc = 0.0;
                    for cc in lo..=hi {
                        acc += ratio[s.index(n, cc, h, w)];
                    }
                    img[(c * s.h() + h) * s.w() + w] =
                        dy.data()[i] * den[i].powf(-p.beta) - scale * x.data()[i] * acc;
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn forward_normalizes_toward_smaller_magnitudes() {
        let x = Tensor::full(Shape::nchw(1, 8, 2, 2), 10.0);
        let y = forward(&x, LrnParams::alexnet()).unwrap();
        assert!(y.data().iter().all(|&v| v > 0.0 && v < 10.0));
    }

    #[test]
    fn small_inputs_pass_nearly_unchanged() {
        // With tiny activations the denominator is ~k^beta, a constant.
        let x = Tensor::full(Shape::nchw(1, 4, 1, 1), 1e-3);
        let p = LrnParams::alexnet();
        let y = forward(&x, p).unwrap();
        let expected = 1e-3 / p.k.powf(p.beta);
        for &v in y.data() {
            assert!((v - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn gradient_check() {
        let p = LrnParams { size: 3, alpha: 0.1, beta: 0.75, k: 1.0 };
        let x = crate::init::uniform(Shape::nchw(1, 5, 2, 2), 0.2, 1.5, 77);
        let y = forward(&x, p).unwrap();
        let dx = backward(&x, &y, p).unwrap(); // loss = sum(y^2)/2
        let loss = |x: &Tensor| -> f64 {
            forward(x, p).unwrap().data().iter().map(|&v| (v as f64).powi(2) / 2.0).sum()
        };
        let eps = 1e-3f32;
        for idx in [0usize, 4, 9, 13, 19] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            let ana = dx.data()[idx] as f64;
            assert!((num - ana).abs() < 2e-3, "dx[{idx}]: {num} vs {ana}");
        }
    }

    #[test]
    fn window_clamps_at_channel_edges() {
        assert_eq!(window(0, 8, 5), (0, 2));
        assert_eq!(window(4, 8, 5), (2, 6));
        assert_eq!(window(7, 8, 5), (5, 7));
    }

    #[test]
    fn rejects_zero_window() {
        let x = Tensor::zeros(Shape::nchw(1, 2, 2, 2));
        assert!(forward(&x, LrnParams { size: 0, alpha: 1.0, beta: 1.0, k: 1.0 }).is_err());
    }
}
