//! ReLU forward and backward.
//!
//! The backward kernel is the heart of the paper's Binarize insight
//! (Figure 4(b)): `dX[i] = dY[i] if Y[i] > 0 else 0`. Only the *sign* of the
//! stashed output is needed, so a 1-bit representation suffices when the
//! consumer layer (Pool) does not need the actual values.

use crate::Tensor;

/// Forward pass: `Y = max(X, 0)`.
pub fn forward(x: &Tensor) -> Tensor {
    let mut y = Tensor::zeros(x.shape());
    forward_into(x, &mut y);
    y
}

/// Forward pass writing into a preallocated output (e.g. an arena view).
/// Every element of `y` is overwritten. Bit-exact with [`forward`]: `-0.0`
/// inputs map to `+0.0`, unlike [`forward_inplace`] which preserves them.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn forward_into(x: &Tensor, y: &mut Tensor) {
    assert_eq!(x.shape(), y.shape(), "relu forward shapes");
    for (out, &v) in y.data_mut().iter_mut().zip(x.data()) {
        *out = if v > 0.0 { v } else { 0.0 };
    }
}

/// In-place forward pass, reusing the input buffer.
///
/// This models the paper's *inplace computation* optimization (Section III-C):
/// ReLU has a read-once/write-once property per element, so the convolution
/// output buffer can be overwritten, removing one immediately-consumed
/// data structure.
pub fn forward_inplace(x: &mut Tensor) {
    for v in x.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backward pass from the stashed output: `dX = dY ⊙ [Y > 0]`.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn backward(y: &Tensor, dy: &Tensor) -> Tensor {
    assert_eq!(y.shape(), dy.shape(), "relu backward shapes");
    let data =
        y.data().iter().zip(dy.data()).map(|(&yv, &dv)| if yv > 0.0 { dv } else { 0.0 }).collect();
    Tensor::from_vec(y.shape(), data).expect("same shape")
}

/// Backward pass from a 1-bit positivity mask instead of the full `Y`.
///
/// `mask[i]` is true iff `Y[i] > 0`; this is exactly what Gist's Binarize
/// encoding stashes. Bit-exact equivalent of [`backward`].
///
/// # Panics
///
/// Panics if `mask.len() != dy.numel()`.
pub fn backward_from_mask(mask: &[bool], dy: &Tensor) -> Tensor {
    assert_eq!(mask.len(), dy.numel(), "mask length");
    let data = mask.iter().zip(dy.data()).map(|(&m, &dv)| if m { dv } else { 0.0 }).collect();
    Tensor::from_vec(dy.shape(), data).expect("same shape")
}

/// [`backward`] writing into a preallocated buffer (e.g. a planned arena
/// side region). Every element of `dx` is overwritten; bit-exact with
/// [`backward`].
///
/// # Panics
///
/// Panics if the shapes differ or `dx.numel() != dy.numel()`.
pub fn backward_into(y: &Tensor, dy: &Tensor, dx: &mut Tensor) {
    assert_eq!(y.shape(), dy.shape(), "relu backward shapes");
    assert_eq!(dx.numel(), dy.numel(), "relu backward output size");
    for (out, (&yv, &dv)) in dx.data_mut().iter_mut().zip(y.data().iter().zip(dy.data())) {
        *out = if yv > 0.0 { dv } else { 0.0 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;

    #[test]
    fn forward_clamps_negatives() {
        let x = Tensor::from_vec(Shape::vector(4), vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        assert_eq!(forward(&x).data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn forward_into_overwrites_poisoned_output() {
        let x = Tensor::from_vec(Shape::vector(4), vec![-1.0, -0.0, 2.0, f32::MIN]).unwrap();
        let mut y = Tensor::full(Shape::vector(4), f32::NAN);
        forward_into(&x, &mut y);
        assert_eq!(y, forward(&x));
        // -0.0 normalizes to +0.0, matching `forward` exactly.
        assert!(y.data()[1].is_sign_positive());
    }

    #[test]
    fn forward_inplace_matches_forward() {
        let x = Tensor::from_vec(Shape::vector(5), vec![-1.0, 3.0, 0.0, -7.0, 0.25]).unwrap();
        let y = forward(&x);
        let mut xi = x;
        forward_inplace(&mut xi);
        assert_eq!(xi, y);
    }

    #[test]
    fn backward_masks_by_positive_output() {
        let y = Tensor::from_vec(Shape::vector(4), vec![0.0, 1.0, 0.0, 3.0]).unwrap();
        let dy = Tensor::from_vec(Shape::vector(4), vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        assert_eq!(backward(&y, &dy).data(), &[0.0, 6.0, 0.0, 8.0]);
    }

    #[test]
    fn backward_from_mask_is_bit_exact_with_backward() {
        let y = Tensor::from_vec(Shape::vector(6), vec![0.0, 0.1, 2.5, 0.0, 9.0, 0.0]).unwrap();
        let dy = Tensor::from_vec(Shape::vector(6), vec![1.0, -2.0, 3.0, -4.0, 5.0, -6.0]).unwrap();
        let mask: Vec<bool> = y.data().iter().map(|&v| v > 0.0).collect();
        assert_eq!(backward_from_mask(&mask, &dy), backward(&y, &dy));
    }
}
