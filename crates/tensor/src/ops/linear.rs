//! Fully-connected (inner-product) layer.
//!
//! Activations are `[N, F]` matrices (stored as degenerate NCHW); weights are
//! `[F_out, F_in]`. Like convolution, the backward pass needs the stashed
//! input to form weight gradients, so FC inputs fall in the paper's "Others"
//! stash category (DPR-eligible).

use crate::ops::matmul::{matmul_a_bt_into, matmul_at_b};
use crate::{ScratchPool, Shape, Tensor, TensorError};
use gist_par::{parallel_chunks_mut, parallel_reduce};

/// Batch rows per parallel chunk — a pure function of the layer shape.
fn batch_grain(n: usize, f: usize) -> usize {
    ((1 << 12) / f.max(1)).clamp(1, n.max(1))
}

/// Forward pass: `Y[N, F_out] = X[N, F_in] * W^T + b`.
///
/// # Errors
///
/// Returns an error if `x`'s flattened feature count differs from `F_in` or
/// the bias length differs from `F_out`.
pub fn forward(x: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Result<Tensor, TensorError> {
    let (n, _) = x.shape().as_matrix();
    let (f_out, _) = weight.shape().as_matrix();
    let mut y = Tensor::zeros(Shape::matrix(n, f_out));
    forward_into(x, weight, bias, &mut y)?;
    Ok(y)
}

/// Forward pass writing into a preallocated output (e.g. an arena view).
/// Every element of `y` is overwritten; bit-exact with [`forward`].
///
/// # Errors
///
/// As for [`forward`], plus a shape mismatch if `y` does not flatten to
/// `[N, F_out]`.
pub fn forward_into(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    y: &mut Tensor,
) -> Result<(), TensorError> {
    let (n, f_in) = x.shape().as_matrix();
    let (f_out, wf_in) = weight.shape().as_matrix();
    if wf_in != f_in {
        return Err(TensorError::ShapeMismatch { left: x.shape(), right: weight.shape() });
    }
    if let Some(b) = bias {
        if b.numel() != f_out {
            return Err(TensorError::ShapeMismatch {
                left: b.shape(),
                right: Shape::vector(f_out),
            });
        }
    }
    if y.shape().as_matrix() != (n, f_out) {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: Shape::matrix(n, f_out) });
    }
    matmul_a_bt_into(x.data(), weight.data(), n, f_in, f_out, y.data_mut());
    if let Some(b) = bias {
        let grain = batch_grain(n, f_out);
        parallel_chunks_mut(y.data_mut(), grain * f_out, |_, rows| {
            for row in rows.chunks_mut(f_out) {
                for (v, bv) in row.iter_mut().zip(b.data()) {
                    *v += bv;
                }
            }
        });
    }
    Ok(())
}

/// Gradients from the fully-connected backward pass.
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient w.r.t. the input.
    pub dx: Tensor,
    /// Gradient w.r.t. the weight matrix.
    pub dw: Tensor,
    /// Gradient w.r.t. the bias.
    pub db: Tensor,
}

/// Backward pass. `x` is the stashed input, `dy` is `[N, F_out]`.
///
/// # Errors
///
/// Returns an error on dimension mismatch.
pub fn backward(x: &Tensor, weight: &Tensor, dy: &Tensor) -> Result<LinearGrads, TensorError> {
    backward_with(x, weight, dy, &ScratchPool::new())
}

/// [`backward`] with the per-task bias-reduction partials leased from a
/// caller-owned [`ScratchPool`] instead of heap-allocated per call.
/// Bit-exact with [`backward`] at every thread count.
///
/// # Errors
///
/// As for [`backward`].
pub fn backward_with(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    scratch: &ScratchPool,
) -> Result<LinearGrads, TensorError> {
    let (n, f_in) = x.shape().as_matrix();
    let mut dx = Tensor::zeros(Shape::matrix(n, f_in));
    let (dw, db) = backward_with_into(x, weight, dy, scratch, &mut dx)?;
    Ok(LinearGrads { dx, dw, db })
}

/// [`backward_with`] landing `dx` in a preallocated buffer (e.g. a planned
/// arena side region) instead of a fresh allocation; returns `(dw, db)`.
/// `dx` may carry any shape that flattens to `[N, F_in]` (the producer's
/// NCHW shape included); every element is overwritten by the matmul.
/// Bit-exact with [`backward_with`].
///
/// # Errors
///
/// As for [`backward`], plus a shape mismatch on `dx`.
pub fn backward_with_into(
    x: &Tensor,
    weight: &Tensor,
    dy: &Tensor,
    scratch: &ScratchPool,
    dx: &mut Tensor,
) -> Result<(Tensor, Tensor), TensorError> {
    let (n, f_in) = x.shape().as_matrix();
    let (f_out, wf_in) = weight.shape().as_matrix();
    let (dn, df) = dy.shape().as_matrix();
    if wf_in != f_in || dn != n || df != f_out {
        return Err(TensorError::ShapeMismatch { left: dy.shape(), right: weight.shape() });
    }
    if dx.shape().as_matrix() != (n, f_in) {
        return Err(TensorError::ShapeMismatch { left: dx.shape(), right: Shape::matrix(n, f_in) });
    }
    // dX[N, F_in] = dY[N, F_out] * W[F_out, F_in]
    gist_simd::matmul_into(dy.data(), weight.data(), n, f_out, f_in, dx.data_mut());
    // dW[F_out, F_in] = dY^T[F_out, N] * X[N, F_in]
    let dw = matmul_at_b(dy.data(), x.data(), f_out, n, f_in);
    // db[j] = sum over batch rows of dy[n][j], combined along gist-par's
    // fixed pairwise tree so the result is thread-count invariant.
    let grain = batch_grain(n, f_out);
    let db = parallel_reduce(
        n,
        grain,
        |range| {
            let mut part = scratch.lease(f_out);
            for row in range {
                for (d, v) in part.iter_mut().zip(&dy.data()[row * f_out..(row + 1) * f_out]) {
                    *d += v;
                }
            }
            part
        },
        |mut a, b| {
            for (d, v) in a.iter_mut().zip(b.iter()) {
                *d += v;
            }
            a
        },
    )
    .map_or_else(|| vec![0.0f32; f_out], |part| part.to_vec());
    Ok((Tensor::from_vec(weight.shape(), dw)?, Tensor::from_vec(Shape::vector(f_out), db)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        // X = [1 2], W = [[1 0],[0 1],[1 1]], b = [0.5, 0.5, 0.5]
        let x = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 2.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(3, 2), vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = Tensor::from_vec(Shape::vector(3), vec![0.5; 3]).unwrap();
        let y = forward(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn forward_accepts_nchw_input() {
        // Conv output [1, 2, 1, 1] flattens to 2 features.
        let x = Tensor::from_vec(Shape::nchw(1, 2, 1, 1), vec![3.0, 4.0]).unwrap();
        let w = Tensor::from_vec(Shape::matrix(1, 2), vec![1.0, 1.0]).unwrap();
        assert_eq!(forward(&x, &w, None).unwrap().data(), &[7.0]);
    }

    #[test]
    fn gradient_check() {
        let x = crate::init::uniform(Shape::matrix(3, 4), -1.0, 1.0, 5);
        let w = crate::init::uniform(Shape::matrix(2, 4), -1.0, 1.0, 6);
        let y = forward(&x, &w, None).unwrap();
        let g = backward(&x, &w, &y).unwrap(); // loss = sum(y^2)/2
        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            forward(x, w, None).unwrap().data().iter().map(|&v| (v as f64).powi(2) / 2.0).sum()
        };
        let eps = 1e-3f32;
        for idx in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64);
            assert!((num - g.dx.data()[idx] as f64).abs() < 1e-2);
        }
        for idx in 0..w.numel() {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64);
            assert!((num - g.dw.data()[idx] as f64).abs() < 1e-2);
        }
    }

    #[test]
    fn db_sums_over_batch() {
        let x = Tensor::full(Shape::matrix(4, 2), 1.0);
        let w = Tensor::full(Shape::matrix(3, 2), 1.0);
        let dy = Tensor::full(Shape::matrix(4, 3), 1.0);
        let g = backward(&x, &w, &dy).unwrap();
        assert_eq!(g.db.data(), &[4.0, 4.0, 4.0]);
    }

    #[test]
    fn rejects_feature_mismatch() {
        let x = Tensor::zeros(Shape::matrix(1, 3));
        let w = Tensor::zeros(Shape::matrix(2, 4));
        assert!(forward(&x, &w, None).is_err());
        assert!(backward(&x, &w, &Tensor::zeros(Shape::matrix(1, 2))).is_err());
    }
}
