//! Dense matrix multiplication helpers.
//!
//! These back the convolution (im2col) and fully-connected kernels. The
//! paper's SSDC encoding is explicitly "sparse storage, dense compute":
//! stashed data is decoded back to dense before being fed to these kernels.
//!
//! Since the gist-simd rewire, all three kernels delegate to
//! `gist_simd`'s blocked, panel-packed implementations. Those run on the
//! `gist-par` pool, partitioned by blocks of output **rows** with the same
//! grain formula this module used pre-SIMD, and accumulate every output
//! element in exactly the serial sweep's order (inner `p` ascending) — so
//! results stay bit-identical at every thread count *and* at every
//! `GIST_SIMD` level (NaN payloads canonical, see `gist_simd::canon_bits`).

/// `C[m x n] = A[m x k] * B[k x n]`, row-major.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    gist_simd::matmul_into(a, b, m, k, n, &mut c);
    c
}

/// `C[m x n] = A^T[m x k] * B[k x n]` where `A` is stored as `[k x m]`.
///
/// The serial reference sweeps `p` in the outer loop; each output row
/// accumulates its `p` contributions in the same ascending order, so the
/// per-element floating-point sums are unchanged.
pub fn matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_at_b_into(a, b, m, k, n, &mut c);
    c
}

/// [`matmul_at_b`] writing into a preallocated output slice (e.g. a leased
/// scratch buffer). Every element of `c` is overwritten, so the slice may
/// hold garbage on entry; bit-exact with [`matmul_at_b`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    gist_simd::matmul_at_b_into(a, b, m, k, n, c);
}

/// `C[m x n] = A[m x k] * B^T[k x n]` where `B` is stored as `[n x k]`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_a_bt_into(a, b, m, k, n, &mut c);
    c
}

/// [`matmul_a_bt`] writing into a preallocated output slice (e.g. an arena
/// view). Every element of `c` is overwritten, so the slice may hold
/// garbage on entry; bit-exact with [`matmul_a_bt`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    gist_simd::matmul_a_bt_into(a, b, m, k, n, c);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_identity() {
        // [1 2; 3 4] * I = same
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &eye, 2, 2, 2), a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        assert_eq!(matmul(&a, &b, 2, 3, 2), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let a = vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0]; // 2x3
        let b = vec![2.0, 0.0, 1.0, -1.0, 0.5, 2.0]; // 3x2
        let c = matmul(&a, &b, 2, 3, 2);

        // a stored transposed as 3x2 -> use matmul_at_b
        let at = vec![1.0, 3.0, -2.0, 4.0, 0.5, -1.0];
        assert_eq!(matmul_at_b(&at, &b, 2, 3, 2), c);

        // b stored transposed as 2x3 -> use matmul_a_bt
        let bt = vec![2.0, 1.0, 0.5, 0.0, -1.0, 2.0];
        assert_eq!(matmul_a_bt(&a, &bt, 2, 3, 2), c);
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_checks_dims() {
        matmul(&[1.0], &[1.0], 2, 2, 2);
    }
}
