//! Dense matrix multiplication helpers.
//!
//! These back the convolution (im2col) and fully-connected kernels. The
//! paper's SSDC encoding is explicitly "sparse storage, dense compute":
//! stashed data is decoded back to dense before being fed to these kernels.
//!
//! All three kernels run on the `gist-par` pool, partitioned by blocks of
//! output **rows**. Each output element is accumulated in exactly the same
//! scalar order as a serial sweep (inner `p` ascending), so results are
//! bit-identical at every thread count.

use gist_par::parallel_chunks_mut;

/// Rows per parallel chunk: a pure function of the matrix shape (never of
/// thread count), targeting enough work per chunk to amortize dispatch.
fn row_grain(m: usize, k: usize, n: usize) -> usize {
    let flops_per_row = (2 * k * n).max(1);
    let rows_per_chunk = (1 << 16) / flops_per_row;
    rows_per_chunk.clamp(1, m.max(1))
}

/// `C[m x n] = A[m x k] * B[k x n]`, row-major.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    let mut c = vec![0.0f32; m * n];
    let grain = row_grain(m, k, n);
    parallel_chunks_mut(&mut c, grain * n, |ci, cchunk| {
        let row0 = ci * grain;
        for (r, crow) in cchunk.chunks_mut(n).enumerate() {
            let i = row0 + r;
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    });
    c
}

/// `C[m x n] = A^T[m x k] * B[k x n]` where `A` is stored as `[k x m]`.
///
/// The serial reference sweeps `p` in the outer loop; here each output row
/// accumulates its `p` contributions in the same ascending order, so the
/// per-element floating-point sums are unchanged.
pub fn matmul_at_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_at_b_into(a, b, m, k, n, &mut c);
    c
}

/// [`matmul_at_b`] writing into a preallocated output slice (e.g. a leased
/// scratch buffer). Every element of `c` is overwritten (each chunk is
/// zeroed before accumulation), so the slice may hold garbage on entry;
/// bit-exact with [`matmul_at_b`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    let grain = row_grain(m, k, n);
    parallel_chunks_mut(c, grain * n, |ci, cchunk| {
        cchunk.fill(0.0);
        let row0 = ci * grain;
        for (r, crow) in cchunk.chunks_mut(n).enumerate() {
            let i = row0 + r;
            for p in 0..k {
                let av = a[p * m + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    });
}

/// `C[m x n] = A[m x k] * B^T[k x n]` where `B` is stored as `[n x k]`.
pub fn matmul_a_bt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    matmul_a_bt_into(a, b, m, k, n, &mut c);
    c
}

/// [`matmul_a_bt`] writing into a preallocated output slice (e.g. an arena
/// view). Every element of `c` is overwritten (`*cv = acc`), so the slice
/// may hold garbage on entry; bit-exact with [`matmul_a_bt`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), n * k, "rhs length");
    assert_eq!(c.len(), m * n, "out length");
    let grain = row_grain(m, k, n);
    parallel_chunks_mut(c, grain * n, |ci, cchunk| {
        let row0 = ci * grain;
        for (r, crow) in cchunk.chunks_mut(n).enumerate() {
            let i = row0 + r;
            let arow = &a[i * k..(i + 1) * k];
            for (j, cv) in crow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (av, bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                *cv = acc;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_identity() {
        // [1 2; 3 4] * I = same
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &eye, 2, 2, 2), a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0];
        assert_eq!(matmul(&a, &b, 2, 3, 2), vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_variants_agree_with_plain() {
        let a = vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0]; // 2x3
        let b = vec![2.0, 0.0, 1.0, -1.0, 0.5, 2.0]; // 3x2
        let c = matmul(&a, &b, 2, 3, 2);

        // a stored transposed as 3x2 -> use matmul_at_b
        let at = vec![1.0, 3.0, -2.0, 4.0, 0.5, -1.0];
        assert_eq!(matmul_at_b(&at, &b, 2, 3, 2), c);

        // b stored transposed as 2x3 -> use matmul_a_bt
        let bt = vec![2.0, 1.0, 0.5, 0.0, -1.0, 2.0];
        assert_eq!(matmul_a_bt(&a, &bt, 2, 3, 2), c);
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_checks_dims() {
        matmul(&[1.0], &[1.0], 2, 2, 2);
    }
}
