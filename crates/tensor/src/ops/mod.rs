//! Forward and backward CPU kernels for the layer types used by the paper's
//! six CNNs (AlexNet, NiN, Overfeat, VGG16, Inception, ResNet).

pub mod batchnorm;
pub mod conv;
pub mod dropout;
pub mod elementwise;
pub mod linear;
pub mod lrn;
pub mod matmul;
pub mod pool;
pub mod relu;
pub mod softmax;
