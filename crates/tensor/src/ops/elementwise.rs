//! Structural ops: residual addition (ResNet) and channel concatenation
//! (Inception).

use crate::{Shape, Tensor, TensorError};

/// Residual addition forward: `Y = A + B`.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn add_forward(a: &Tensor, b: &Tensor) -> Result<Tensor, TensorError> {
    a.add(b)
}

/// Residual addition writing into a preallocated output (e.g. an arena
/// view). Every element of `y` is overwritten; bit-exact with
/// [`add_forward`].
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn add_forward_into(a: &Tensor, b: &Tensor, y: &mut Tensor) -> Result<(), TensorError> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch { left: a.shape(), right: b.shape() });
    }
    if y.shape() != a.shape() {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: a.shape() });
    }
    let (av, bv) = (a.data(), b.data());
    for (i, out) in y.data_mut().iter_mut().enumerate() {
        *out = av[i] + bv[i];
    }
    Ok(())
}

/// Residual addition backward: the gradient flows unchanged to both inputs.
pub fn add_backward(dy: &Tensor) -> (Tensor, Tensor) {
    (dy.clone(), dy.clone())
}

/// [`add_backward`] for one input, writing into a preallocated buffer (e.g.
/// a planned arena side region). Every element of `dx` is overwritten;
/// bit-exact with the corresponding [`add_backward`] output.
///
/// # Panics
///
/// Panics if `dx.numel() != dy.numel()`.
pub fn add_backward_into(dy: &Tensor, dx: &mut Tensor) {
    assert_eq!(dx.numel(), dy.numel(), "add backward output size");
    dx.data_mut().copy_from_slice(dy.data());
}

/// Concatenation of tensors along the channel dimension.
///
/// # Errors
///
/// Returns an error if inputs disagree on N/H/W or the list is empty.
pub fn concat_forward(inputs: &[&Tensor]) -> Result<Tensor, TensorError> {
    let first = inputs
        .first()
        .ok_or_else(|| TensorError::UnsupportedShape("concat of zero tensors".into()))?;
    let s0 = first.shape();
    let total_c = inputs.iter().map(|t| t.shape().c()).sum();
    let mut y = Tensor::zeros(Shape::nchw(s0.n(), total_c, s0.h(), s0.w()));
    concat_forward_into(inputs, &mut y)?;
    Ok(y)
}

/// Concatenation writing into a preallocated output (e.g. an arena view).
/// Every element of `y` is overwritten; bit-exact with [`concat_forward`].
///
/// # Errors
///
/// Returns an error if inputs disagree on N/H/W, the list is empty, or `y`
/// has the wrong shape.
pub fn concat_forward_into(inputs: &[&Tensor], y: &mut Tensor) -> Result<(), TensorError> {
    let first = inputs
        .first()
        .ok_or_else(|| TensorError::UnsupportedShape("concat of zero tensors".into()))?;
    let s0 = first.shape();
    let mut total_c = 0;
    for t in inputs {
        let s = t.shape();
        if s.n() != s0.n() || s.h() != s0.h() || s.w() != s0.w() {
            return Err(TensorError::ShapeMismatch { left: s, right: s0 });
        }
        total_c += s.c();
    }
    let out_shape = Shape::nchw(s0.n(), total_c, s0.h(), s0.w());
    if y.shape() != out_shape {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: out_shape });
    }
    let plane = s0.h() * s0.w();
    for n in 0..s0.n() {
        let mut c_off = 0;
        for t in inputs {
            let c = t.shape().c();
            let src = &t.data()[n * c * plane..(n + 1) * c * plane];
            let dst_start = (n * total_c + c_off) * plane;
            y.data_mut()[dst_start..dst_start + c * plane].copy_from_slice(src);
            c_off += c;
        }
    }
    Ok(())
}

/// Concatenation backward: splits `dy` back into per-input gradients.
///
/// # Errors
///
/// Returns an error if the channel sum of `input_shapes` differs from `dy`.
pub fn concat_backward(dy: &Tensor, input_shapes: &[Shape]) -> Result<Vec<Tensor>, TensorError> {
    let mut grads: Vec<Tensor> = input_shapes.iter().map(|&sh| Tensor::zeros(sh)).collect();
    {
        let mut views: Vec<&mut Tensor> = grads.iter_mut().collect();
        concat_backward_into(dy, input_shapes, &mut views)?;
    }
    Ok(grads)
}

/// [`concat_backward`] writing each per-input gradient into a preallocated
/// buffer (e.g. planned arena side regions). Every element of every output
/// is overwritten; bit-exact with [`concat_backward`].
///
/// # Errors
///
/// As for [`concat_backward`], plus a mismatch if any output's element count
/// differs from its input shape.
pub fn concat_backward_into(
    dy: &Tensor,
    input_shapes: &[Shape],
    outs: &mut [&mut Tensor],
) -> Result<(), TensorError> {
    let s = dy.shape();
    let total_c: usize = input_shapes.iter().map(|sh| sh.c()).sum();
    if total_c != s.c() || outs.len() != input_shapes.len() {
        return Err(TensorError::UnsupportedShape(format!(
            "concat backward: channel sum {total_c} != dy channels {} or {} outputs for {} shapes",
            s.c(),
            outs.len(),
            input_shapes.len()
        )));
    }
    for (g, sh) in outs.iter().zip(input_shapes) {
        if g.numel() != sh.numel() {
            return Err(TensorError::ShapeMismatch { left: g.shape(), right: *sh });
        }
    }
    let plane = s.h() * s.w();
    for n in 0..s.n() {
        let mut c_off = 0;
        for (g, sh) in outs.iter_mut().zip(input_shapes) {
            let c = sh.c();
            let src_start = (n * total_c + c_off) * plane;
            let dst_start = n * c * plane;
            g.data_mut()[dst_start..dst_start + c * plane]
                .copy_from_slice(&dy.data()[src_start..src_start + c * plane]);
            c_off += c;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_roundtrip() {
        let a = Tensor::full(Shape::nchw(1, 1, 2, 2), 1.0);
        let b = Tensor::full(Shape::nchw(1, 1, 2, 2), 2.0);
        let y = add_forward(&a, &b).unwrap();
        assert_eq!(y.data(), &[3.0; 4]);
        let (da, db) = add_backward(&y);
        assert_eq!(da, y);
        assert_eq!(db, y);
    }

    #[test]
    fn concat_then_split_is_identity() {
        let a = crate::init::uniform(Shape::nchw(2, 3, 4, 4), -1.0, 1.0, 1);
        let b = crate::init::uniform(Shape::nchw(2, 5, 4, 4), -1.0, 1.0, 2);
        let y = concat_forward(&[&a, &b]).unwrap();
        assert_eq!(y.shape(), Shape::nchw(2, 8, 4, 4));
        let parts = concat_backward(&y, &[a.shape(), b.shape()]).unwrap();
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn concat_preserves_channel_order() {
        let a = Tensor::full(Shape::nchw(1, 1, 1, 2), 1.0);
        let b = Tensor::full(Shape::nchw(1, 2, 1, 2), 2.0);
        let y = concat_forward(&[&a, &b]).unwrap();
        assert_eq!(y.data(), &[1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn concat_rejects_spatial_mismatch_and_empty() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(concat_forward(&[&a, &b]).is_err());
        assert!(concat_forward(&[]).is_err());
    }

    #[test]
    fn concat_backward_validates_channels() {
        let dy = Tensor::zeros(Shape::nchw(1, 4, 2, 2));
        assert!(concat_backward(&dy, &[Shape::nchw(1, 1, 2, 2)]).is_err());
    }
}
