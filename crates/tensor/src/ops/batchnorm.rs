//! Spatial batch normalization (per-channel over N×H×W).
//!
//! ResNet interleaves batch-norm between convolutions and ReLUs. The paper
//! notes that recomputation (prior work) remains applicable to cheap layers
//! like batch normalization and composes with Gist; here we implement the
//! standard stash-based backward pass.

use crate::{Shape, Tensor, TensorError};
use gist_par::{parallel_chunks_mut, parallel_map};

/// Saved statistics from the forward pass needed by the backward pass.
#[derive(Debug, Clone)]
pub struct BatchNormCache {
    /// Per-channel batch mean.
    pub mean: Vec<f32>,
    /// Per-channel inverse standard deviation.
    pub inv_std: Vec<f32>,
}

/// Forward pass with learned per-channel scale (`gamma`) and shift (`beta`).
///
/// # Errors
///
/// Returns an error if `gamma`/`beta` length differs from the channel count.
pub fn forward(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
) -> Result<(Tensor, BatchNormCache), TensorError> {
    let mut y = Tensor::zeros(x.shape());
    let cache = forward_into(x, gamma, beta, eps, &mut y)?;
    Ok((y, cache))
}

/// Forward pass writing into a preallocated output (e.g. an arena view),
/// returning the saved statistics. Every element of `y` is overwritten;
/// bit-exact with [`forward`].
///
/// # Errors
///
/// As for [`forward`], plus a shape mismatch on `y`.
pub fn forward_into(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    y: &mut Tensor,
) -> Result<BatchNormCache, TensorError> {
    let s = x.shape();
    let c = s.c();
    if gamma.numel() != c || beta.numel() != c {
        return Err(TensorError::ShapeMismatch { left: gamma.shape(), right: Shape::vector(c) });
    }
    if y.shape() != s {
        return Err(TensorError::ShapeMismatch { left: y.shape(), right: s });
    }
    let per = s.n() * s.h() * s.w();
    let (sn, sh, sw) = (s.n(), s.h(), s.w());
    // Channels are independent statistics; each channel accumulates over
    // (n, h, w) in the same ascending order as a serial sweep, so the sums
    // are bit-identical at every thread count.
    let mut mean: Vec<f32> = parallel_map(c, 1, |ci| {
        let mut m = 0.0f32;
        for n in 0..sn {
            for h in 0..sh {
                for w in 0..sw {
                    m += x.at(n, ci, h, w);
                }
            }
        }
        m
    });
    for m in &mut mean {
        *m /= per as f32;
    }
    let var: Vec<f32> = parallel_map(c, 1, |ci| {
        let mut v = 0.0f32;
        for n in 0..sn {
            for h in 0..sh {
                for w in 0..sw {
                    let d = x.at(n, ci, h, w) - mean[ci];
                    v += d * d;
                }
            }
        }
        v
    });
    let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v / per as f32 + eps).sqrt()).collect();
    // Images are contiguous NCHW slices of y — disjoint elementwise writes.
    parallel_chunks_mut(y.data_mut(), c * sh * sw, |n, img| {
        for ci in 0..c {
            let (g, b, m, is) = (gamma.data()[ci], beta.data()[ci], mean[ci], inv_std[ci]);
            let plane = &mut img[ci * sh * sw..(ci + 1) * sh * sw];
            for h in 0..sh {
                for w in 0..sw {
                    plane[h * sw + w] = g * (x.at(n, ci, h, w) - m) * is + b;
                }
            }
        }
    });
    Ok(BatchNormCache { mean, inv_std })
}

/// Gradients from the batch-norm backward pass.
#[derive(Debug, Clone)]
pub struct BatchNormGrads {
    /// Gradient w.r.t. the input.
    pub dx: Tensor,
    /// Gradient w.r.t. `gamma`.
    pub dgamma: Tensor,
    /// Gradient w.r.t. `beta`.
    pub dbeta: Tensor,
}

/// Backward pass using the stashed input and forward statistics.
///
/// # Errors
///
/// Returns an error on shape mismatch.
pub fn backward(
    x: &Tensor,
    gamma: &Tensor,
    cache: &BatchNormCache,
    dy: &Tensor,
) -> Result<BatchNormGrads, TensorError> {
    let mut dx = Tensor::zeros(x.shape());
    let (dgamma, dbeta) = backward_into(x, gamma, cache, dy, &mut dx)?;
    Ok(BatchNormGrads { dx, dgamma, dbeta })
}

/// [`backward`] landing `dx` in a preallocated buffer (e.g. a planned
/// arena side region) instead of a fresh allocation; returns
/// `(dgamma, dbeta)`. Every element of `dx` is overwritten by the
/// elementwise pass. Bit-exact with [`backward`].
///
/// # Errors
///
/// As for [`backward`], plus a shape mismatch on `dx`.
pub fn backward_into(
    x: &Tensor,
    gamma: &Tensor,
    cache: &BatchNormCache,
    dy: &Tensor,
    dx: &mut Tensor,
) -> Result<(Tensor, Tensor), TensorError> {
    let s = x.shape();
    if dy.shape() != s {
        return Err(TensorError::ShapeMismatch { left: dy.shape(), right: s });
    }
    if dx.shape() != s {
        return Err(TensorError::ShapeMismatch { left: dx.shape(), right: s });
    }
    let c = s.c();
    let (sn, sh, sw) = (s.n(), s.h(), s.w());
    let per = (sn * sh * sw) as f32;
    // Per-channel gradient statistics, each accumulated in serial (n, h, w)
    // order — see the determinism note in `forward`.
    let stats: Vec<(f32, f32, f32)> = parallel_map(c, 1, |ci| {
        let mut dgamma = 0.0f32;
        let mut dbeta = 0.0f32;
        let mut sum_dy_xhat = 0.0f32;
        for n in 0..sn {
            for h in 0..sh {
                for w in 0..sw {
                    let xhat = (x.at(n, ci, h, w) - cache.mean[ci]) * cache.inv_std[ci];
                    let d = dy.at(n, ci, h, w);
                    dgamma += d * xhat;
                    dbeta += d;
                    sum_dy_xhat += d * xhat;
                }
            }
        }
        (dgamma, dbeta, sum_dy_xhat)
    });
    let dgamma: Vec<f32> = stats.iter().map(|s| s.0).collect();
    let dbeta: Vec<f32> = stats.iter().map(|s| s.1).collect();
    parallel_chunks_mut(dx.data_mut(), c * sh * sw, |n, img| {
        for ci in 0..c {
            let (g, m, is) = (gamma.data()[ci], cache.mean[ci], cache.inv_std[ci]);
            let (_, sum_dy, sum_dy_xhat) = stats[ci];
            let plane = &mut img[ci * sh * sw..(ci + 1) * sh * sw];
            for h in 0..sh {
                for w in 0..sw {
                    let xhat = (x.at(n, ci, h, w) - m) * is;
                    let d = dy.at(n, ci, h, w);
                    plane[h * sw + w] = g * is / per * (per * d - sum_dy - xhat * sum_dy_xhat);
                }
            }
        }
    });
    Ok((Tensor::from_vec(Shape::vector(c), dgamma)?, Tensor::from_vec(Shape::vector(c), dbeta)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_normalized() {
        let x = crate::init::uniform(Shape::nchw(4, 2, 3, 3), -5.0, 5.0, 21);
        let gamma = Tensor::full(Shape::vector(2), 1.0);
        let beta = Tensor::zeros(Shape::vector(2));
        let (y, _) = forward(&x, &gamma, &beta, 1e-5).unwrap();
        // Per-channel mean ~0, var ~1.
        let s = y.shape();
        for ci in 0..2 {
            let mut m = 0.0;
            let mut v = 0.0;
            let per = (s.n() * s.h() * s.w()) as f32;
            for n in 0..s.n() {
                for h in 0..s.h() {
                    for w in 0..s.w() {
                        m += y.at(n, ci, h, w);
                    }
                }
            }
            m /= per;
            for n in 0..s.n() {
                for h in 0..s.h() {
                    for w in 0..s.w() {
                        v += (y.at(n, ci, h, w) - m).powi(2);
                    }
                }
            }
            v /= per;
            assert!(m.abs() < 1e-4, "mean {m}");
            assert!((v - 1.0).abs() < 1e-2, "var {v}");
        }
    }

    #[test]
    fn gamma_beta_scale_shift() {
        let x = crate::init::uniform(Shape::nchw(2, 1, 2, 2), -1.0, 1.0, 3);
        let gamma = Tensor::full(Shape::vector(1), 2.0);
        let beta = Tensor::full(Shape::vector(1), 10.0);
        let (y, _) = forward(&x, &gamma, &beta, 1e-5).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / y.numel() as f32;
        assert!((mean - 10.0).abs() < 1e-4);
    }

    #[test]
    fn gradient_check_dx() {
        let x = crate::init::uniform(Shape::nchw(2, 2, 2, 2), -1.0, 1.0, 17);
        let gamma = Tensor::from_vec(Shape::vector(2), vec![1.5, 0.5]).unwrap();
        let beta = Tensor::from_vec(Shape::vector(2), vec![0.1, -0.2]).unwrap();
        let eps_bn = 1e-5;
        let loss = |x: &Tensor| -> f64 {
            let (y, _) = forward(x, &gamma, &beta, eps_bn).unwrap();
            y.data().iter().map(|&v| (v as f64).powi(2) / 2.0).sum()
        };
        let (y, cache) = forward(&x, &gamma, &beta, eps_bn).unwrap();
        let g = backward(&x, &gamma, &cache, &y).unwrap();
        let eps = 1e-3f32;
        for idx in [0usize, 3, 7, 12, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps as f64);
            let ana = g.dx.data()[idx] as f64;
            assert!((num - ana).abs() < 2e-2, "dx[{idx}]: {num} vs {ana}");
        }
    }

    #[test]
    fn rejects_bad_param_length() {
        let x = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        let bad = Tensor::zeros(Shape::vector(2));
        let good = Tensor::zeros(Shape::vector(3));
        assert!(forward(&x, &bad, &good, 1e-5).is_err());
    }
}
