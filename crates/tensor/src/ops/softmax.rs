//! Softmax and cross-entropy loss over `[N, classes]` logits.

use crate::{Shape, Tensor, TensorError};

/// Row-wise numerically-stable softmax.
pub fn softmax(logits: &Tensor) -> Tensor {
    let (n, k) = logits.shape().as_matrix();
    let mut out = vec![0.0f32; n * k];
    for (orow, irow) in out.chunks_mut(k).zip(logits.data().chunks(k)) {
        let max = irow.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in orow.iter_mut().zip(irow) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    Tensor::from_vec(Shape::matrix(n, k), out).expect("same volume")
}

/// Mean cross-entropy loss and its gradient w.r.t. the logits
/// (`(softmax - onehot) / N`), plus the number of correct top-1 predictions.
#[derive(Debug, Clone)]
pub struct SoftmaxLoss {
    /// Mean negative log-likelihood over the minibatch.
    pub loss: f32,
    /// Gradient with respect to the logits.
    pub dlogits: Tensor,
    /// Count of rows whose argmax equals the label.
    pub correct: usize,
}

/// Computes softmax cross-entropy against integer labels.
///
/// # Errors
///
/// Returns an error if `labels.len()` differs from the minibatch size or any
/// label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<SoftmaxLoss, TensorError> {
    let (n, k) = logits.shape().as_matrix();
    let mut dlogits = Tensor::zeros(Shape::matrix(n, k));
    let (loss, correct) = cross_entropy_into(logits, labels, &mut dlogits)?;
    Ok(SoftmaxLoss { loss, dlogits, correct })
}

/// [`cross_entropy`] landing `dlogits` in a preallocated buffer (e.g. a
/// planned arena side region) instead of a fresh allocation; returns
/// `(loss, correct)`. `dlogits` may carry any shape that flattens to the
/// logits' `[N, classes]`; every element is overwritten. Bit-exact with
/// [`cross_entropy`].
///
/// # Errors
///
/// As for [`cross_entropy`], plus a shape mismatch on `dlogits`.
pub fn cross_entropy_into(
    logits: &Tensor,
    labels: &[usize],
    dlogits: &mut Tensor,
) -> Result<(f32, usize), TensorError> {
    let (n, k) = logits.shape().as_matrix();
    if labels.len() != n {
        return Err(TensorError::UnsupportedShape(format!(
            "{} labels for minibatch of {n}",
            labels.len()
        )));
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
        return Err(TensorError::UnsupportedShape(format!("label {bad} out of range 0..{k}")));
    }
    if dlogits.shape().as_matrix() != (n, k) {
        return Err(TensorError::ShapeMismatch {
            left: dlogits.shape(),
            right: Shape::matrix(n, k),
        });
    }
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let dl = dlogits.data_mut();
    dl.copy_from_slice(probs.data());
    for (i, &label) in labels.iter().enumerate() {
        let row = &probs.data()[i * k..(i + 1) * k];
        loss -= (row[label].max(1e-12) as f64).ln();
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(j, _)| j)
            .expect("non-empty row");
        if argmax == label {
            correct += 1;
        }
        dl[i * k + label] -= 1.0;
    }
    for v in dl.iter_mut() {
        *v /= n as f32;
    }
    Ok(((loss / n as f64) as f32, correct))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = crate::init::uniform(Shape::matrix(5, 7), -3.0, 3.0, 2);
        let p = softmax(&t);
        for row in p.data().chunks(7) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(Shape::matrix(1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(Shape::matrix(1, 3), vec![1001.0, 1002.0, 1003.0]).unwrap();
        let (pa, pb) = (softmax(&a), softmax(&b));
        assert!(pa.max_abs_diff(&pb) < 1e-6);
        assert!(pb.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(Shape::matrix(2, 4));
        let out = cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_cross_entropy() {
        let logits = crate::init::uniform(Shape::matrix(2, 3), -1.0, 1.0, 33);
        let labels = [2usize, 0];
        let out = cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let num = (cross_entropy(&lp, &labels).unwrap().loss
                - cross_entropy(&lm, &labels).unwrap().loss)
                / (2.0 * eps);
            assert!((num - out.dlogits.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn counts_correct_predictions() {
        let logits = Tensor::from_vec(Shape::matrix(2, 2), vec![5.0, 0.0, 0.0, 5.0]).unwrap();
        assert_eq!(cross_entropy(&logits, &[0, 1]).unwrap().correct, 2);
        assert_eq!(cross_entropy(&logits, &[1, 0]).unwrap().correct, 0);
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(Shape::matrix(2, 3));
        assert!(cross_entropy(&logits, &[0]).is_err());
        assert!(cross_entropy(&logits, &[0, 9]).is_err());
    }
}
