//! `gist-par`: the deterministic parallel compute layer.
//!
//! Every hot path in the workspace — dense matmul, im2col convolution, the
//! Binarize/SSDC/DPR codecs, and wavefront-level inter-op dispatch in the
//! runtime — runs on the persistent thread pool defined here. The design
//! goal is **bit-identical results at every thread count**: the paper's
//! lossless claims (and this repo's differential test suites) compare runs
//! bitwise, so parallelism must never change a single ULP.
//!
//! # Determinism contract
//!
//! 1. **Static chunking.** Work is split into chunks whose boundaries
//!    depend only on `(len, grain)` — never on the thread count or on which
//!    worker claims which chunk. Threads race only over *which chunk to run
//!    next*, not over what a chunk computes.
//! 2. **Disjoint writes.** [`parallel_for`] / [`parallel_chunks_mut`] /
//!    [`parallel_map`] tasks write to disjoint output ranges; each output
//!    element is computed by exactly the same scalar code, in the same
//!    order, as the serial path.
//! 3. **Fixed reduction shape.** [`parallel_reduce`] combines per-chunk
//!    partials along a fixed pairwise tree over *chunk indices* (adjacent
//!    pairs, repeatedly), so floating-point accumulation order is a pure
//!    function of `(len, grain)` — independent of thread count and of
//!    completion order. A pool with one thread computes the identical tree.
//!
//! # Pool model
//!
//! One global pool ([`global`]) is sized from the `GIST_THREADS` environment
//! variable when set (a positive integer), else from
//! `std::thread::available_parallelism()`. `GIST_THREADS=1` spawns **no**
//! worker threads; every dispatch runs inline on the caller. Tests that
//! need several thread counts inside one process use [`with_threads`],
//! which installs a scoped pool for the current thread.
//!
//! Nested dispatch (a task calling back into `parallel_for`) degrades to
//! serial execution on the calling worker — no deadlock, no oversubscription
//! and, per the contract above, no change in results. Panics inside tasks
//! are caught, the job is drained, and the first panic is re-raised on the
//! dispatching thread.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

// ---------------------------------------------------------------------------
// Job plumbing
// ---------------------------------------------------------------------------

/// Type-erased pointer to the job closure. The closure lives on the
/// dispatching thread's stack; [`ThreadPool::run`] does not return until
/// every chunk has completed, so workers never dereference it afterwards.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and outlives every
// use (see `ThreadPool::run`'s completion wait).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// Locks ignoring poisoning: the pool deliberately survives panics in
/// user tasks (they are captured and re-raised at the dispatch site), so
/// a poisoned mutex just means "a task panicked", not corrupted state.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct JobStatus {
    completed: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Job {
    task: TaskPtr,
    nchunks: usize,
    /// Ambient context of the dispatching thread, installed on every
    /// worker for the duration of this job (see [`with_ambient`]).
    ambient: u32,
    /// Next unclaimed chunk index.
    next: AtomicUsize,
    status: Mutex<JobStatus>,
    done: Condvar,
}

impl Job {
    /// Claims and runs chunks until none remain. Panics are captured into
    /// the job status; every claimed chunk counts as completed either way.
    fn run_chunks(&self) {
        struct RestoreAmbient(u32);
        impl Drop for RestoreAmbient {
            fn drop(&mut self) {
                AMBIENT.with(|c| c.set(self.0));
            }
        }
        // Install the dispatcher's ambient context; a panicking chunk must
        // still restore the previous value (workers return to their loop).
        let _restore = RestoreAmbient(AMBIENT.with(|c| c.replace(self.ambient)));
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.nchunks {
                break;
            }
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*self.task.0)(i) }));
            let mut st = lock_ignore_poison(&self.status);
            st.completed += 1;
            if let Err(payload) = result {
                st.panic.get_or_insert(payload);
            }
            if st.completed == self.nchunks {
                self.done.notify_all();
            }
        }
    }
}

struct PoolState {
    job: Option<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    signal: Condvar,
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A persistent pool of worker threads executing chunked jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    /// One job in flight at a time; concurrent dispatchers queue here.
    submit: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("threads", &self.threads).finish()
    }
}

thread_local! {
    /// Set while this thread is executing pool chunks (worker threads and
    /// dispatchers participating in their own job). Nested dispatch checks
    /// this and degrades to serial.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
    /// Scoped pool override installed by [`with_pool`] / [`with_threads`].
    static CURRENT: Cell<Option<*const ThreadPool>> = const { Cell::new(None) };
    /// Opaque ambient context (see [`with_ambient`]). `0` means "unset".
    static AMBIENT: Cell<u32> = const { Cell::new(0) };
}

impl ThreadPool {
    /// Creates a pool that executes jobs on `threads` threads total: the
    /// dispatching thread plus `threads - 1` spawned workers. `threads <= 1`
    /// spawns nothing — every dispatch runs inline.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { job: None, shutdown: false }),
            signal: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gist-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn gist-par worker")
            })
            .collect();
        ThreadPool { shared, handles, threads, submit: Mutex::new(()) }
    }

    /// Total execution threads (dispatcher + workers).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Spawned worker threads (0 when the pool is serial).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Executes `f(0)`, `f(1)`, …, `f(nchunks - 1)` across the pool and
    /// blocks until all chunks complete. Chunk-to-thread assignment is
    /// dynamic, so `f` must not care which thread runs which chunk (the
    /// callers in this workspace write disjoint outputs indexed by chunk).
    ///
    /// Runs serially inline when the pool has no workers, when `nchunks`
    /// is small, or when called from inside another pool job (nesting).
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by any chunk, after all claimed
    /// chunks have drained.
    pub fn run<F: Fn(usize) + Sync>(&self, nchunks: usize, f: F) {
        if nchunks == 0 {
            return;
        }
        if self.handles.is_empty() || nchunks == 1 || IN_POOL.with(Cell::get) {
            for i in 0..nchunks {
                f(i);
            }
            return;
        }
        let _guard = lock_ignore_poison(&self.submit);
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erase the borrow's lifetime; `run` waits for completion
        // below, so workers never call the closure after it is dropped.
        let task = TaskPtr(unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f_ref as *const _,
            )
        });
        let job = Arc::new(Job {
            task,
            nchunks,
            ambient: AMBIENT.with(Cell::get),
            next: AtomicUsize::new(0),
            status: Mutex::new(JobStatus { completed: 0, panic: None }),
            done: Condvar::new(),
        });
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            st.job = Some(Arc::clone(&job));
        }
        self.shared.signal.notify_all();
        // The dispatcher participates; its own chunks count as "in pool" so
        // nested dispatch from inside them degrades to serial.
        IN_POOL.with(|c| c.set(true));
        job.run_chunks();
        IN_POOL.with(|c| c.set(false));
        let panic = {
            let mut st = lock_ignore_poison(&job.status);
            while st.completed < job.nchunks {
                st = job.done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.panic.take()
        };
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            st.job = None;
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.signal.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_POOL.with(|c| c.set(true));
    loop {
        let job = {
            let mut st = lock_ignore_poison(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = &st.job {
                    if job.next.load(Ordering::Relaxed) < job.nchunks {
                        break Arc::clone(job);
                    }
                }
                st = shared.signal.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.run_chunks();
    }
}

// ---------------------------------------------------------------------------
// Global + scoped pools
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Parses one configuration knob, falling back with a warning on garbage.
///
/// This is the single spelling-validation policy for every environment
/// variable and CLI spec field in the workspace (`GIST_THREADS` here,
/// `GIST_SIMD` in gist-simd, job-spec fields in gist-serve): a missing
/// value silently takes the fallback, a present-but-unparseable value
/// takes the fallback **and** returns a warning naming the knob, the
/// rejected spelling, the accepted grammar, and the fallback. Callers
/// decide where the warning goes (usually stderr) — the helper never
/// prints, so it stays testable.
///
/// It lives in `gist-par` (below every other crate) and is re-exported
/// from `gist-core` as the canonical path.
pub fn parse_or_warn<T>(
    source: &str,
    knob: &str,
    raw: Option<&str>,
    expected: &str,
    fallback_label: &str,
    parse: impl FnOnce(&str) -> Option<T>,
    fallback: impl FnOnce() -> T,
) -> (T, Option<String>) {
    match raw {
        None => (fallback(), None),
        Some(s) => match parse(s) {
            Some(v) => (v, None),
            None => (
                fallback(),
                Some(format!(
                    "{source}: invalid {knob} value {s:?} (expected {expected}); \
                     falling back to {fallback_label}"
                )),
            ),
        },
    }
}

/// Resolves a raw `GIST_THREADS` value to a thread count plus an optional
/// warning: a positive integer is honoured, anything else falls back to
/// `available_parallelism()` (with a warning when a value was present but
/// malformed). Split from [`env_threads`] so the policy is testable
/// without touching the process environment.
pub fn resolve_env_threads(raw: Option<&str>) -> (usize, Option<String>) {
    parse_or_warn(
        "gist-par",
        "GIST_THREADS",
        raw,
        "a positive integer",
        "available_parallelism",
        |s| s.trim().parse::<usize>().ok().filter(|&n| n >= 1),
        || std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
    )
}

/// Thread count from the environment: `GIST_THREADS` when set to a positive
/// integer, else `available_parallelism()` (warning on stderr when the
/// variable is set but malformed).
pub fn env_threads() -> usize {
    let raw = std::env::var("GIST_THREADS").ok();
    let (threads, warning) = resolve_env_threads(raw.as_deref());
    if let Some(w) = warning {
        eprintln!("{w}");
    }
    threads
}

/// The process-wide pool, created on first use from [`env_threads`].
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(env_threads()))
}

/// Runs `f` with every dispatch from the current thread routed to `pool`
/// instead of the global one. Scoped and re-entrant; used by the
/// differential test suites to compare thread counts in one process.
pub fn with_pool<R>(pool: &ThreadPool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const ThreadPool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT.with(|c| c.replace(Some(pool as *const ThreadPool)));
    let _restore = Restore(prev);
    f()
}

/// Runs `f` on a freshly-built scoped pool of `threads` threads. The pool
/// is joined before this returns.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = ThreadPool::new(threads);
    with_pool(&pool, f)
}

/// The current thread's ambient context (`0` when unset).
///
/// The ambient context is an opaque `u32` that layers above `gist-par`
/// (e.g. `gist-simd`'s scoped SIMD-level override) use to scope per-call
/// configuration. Unlike a plain thread-local, the ambient context
/// **propagates into pool tasks**: every job captures the dispatcher's
/// value at submit time and installs it on whichever threads run its
/// chunks, so a kernel resolving configuration inside a parallel task sees
/// the dispatcher's override, not the worker's stale state.
pub fn ambient() -> u32 {
    AMBIENT.with(Cell::get)
}

/// Runs `f` with the current thread's ambient context set to `value`
/// (restored afterwards, panic-safe). Jobs dispatched inside `f` carry the
/// value to every worker that participates (see [`ambient`]).
pub fn with_ambient<R>(value: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(AMBIENT.with(|c| c.replace(value)));
    f()
}

fn with_current<R>(f: impl FnOnce(&ThreadPool) -> R) -> R {
    match CURRENT.with(Cell::get) {
        // SAFETY: the pointer was installed by `with_pool`, whose borrow of
        // the pool is still on the stack of this thread.
        Some(p) => f(unsafe { &*p }),
        None => f(global()),
    }
}

/// Thread count of the pool the current thread would dispatch to.
pub fn current_threads() -> usize {
    with_current(ThreadPool::threads)
}

// ---------------------------------------------------------------------------
// High-level combinators
// ---------------------------------------------------------------------------

/// A `Send + Sync` raw-pointer wrapper for disjoint parallel writes.
///
/// # Safety
///
/// The caller must guarantee that concurrent tasks write through the
/// pointer only to disjoint element ranges, and that the pointee outlives
/// the dispatch (every `gist-par` dispatch blocks until completion).
pub struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

// Manual impls: derive would add an unwanted `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wraps a raw pointer for cross-task use (see the safety contract
    /// on the type).
    pub fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    /// By-value accessor so closures capture the whole (Sync) wrapper
    /// instead of edition-2021 precise-capturing the raw field.
    pub fn get(self) -> *mut T {
        self.0
    }
}

/// Number of chunks a `(len, grain)` pair splits into.
fn chunk_count(len: usize, grain: usize) -> usize {
    len.div_ceil(grain.max(1))
}

/// Runs `f` over contiguous index sub-ranges of `0..len`, at most `grain`
/// indices per call. Chunk boundaries depend only on `(len, grain)`.
pub fn parallel_for<F: Fn(Range<usize>) + Sync>(len: usize, grain: usize, f: F) {
    if len == 0 {
        return;
    }
    let grain = grain.max(1);
    with_current(|pool| {
        pool.run(chunk_count(len, grain), |i| {
            let start = i * grain;
            f(start..(start + grain).min(len));
        });
    });
}

/// Splits `data` into consecutive chunks of `chunk` elements (last chunk
/// ragged) and runs `f(chunk_index, chunk_slice)` over them in parallel.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let base = SendPtr::new(data.as_mut_ptr());
    with_current(|pool| {
        pool.run(chunk_count(len, chunk), move |i| {
            let ptr = base.get();
            let start = i * chunk;
            let end = (start + chunk).min(len);
            // SAFETY: chunks are disjoint sub-slices of `data`, which
            // outlives the dispatch (run() blocks until completion).
            let slice = unsafe { std::slice::from_raw_parts_mut(ptr.add(start), end - start) };
            f(i, slice);
        });
    });
}

/// Builds `vec![f(0), f(1), …, f(len - 1)]` in parallel, `grain` indices
/// per task. Element `i` is always computed by the same call `f(i)`, so
/// the result is identical at every thread count.
pub fn parallel_map<T, F>(len: usize, grain: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(len);
    if len == 0 {
        return out;
    }
    let base = SendPtr::new(out.as_mut_ptr());
    parallel_for(len, grain, move |range| {
        let ptr = base.get();
        for i in range {
            // SAFETY: each index is written exactly once into capacity
            // reserved above; set_len happens after all writes complete.
            // (If `f` panics, already-written elements leak rather than
            // drop — safe, and the pool re-raises the panic.)
            unsafe { ptr.add(i).write(f(i)) };
        }
    });
    // SAFETY: all `len` slots were initialized by the loop above.
    unsafe { out.set_len(len) };
    out
}

/// Deterministic parallel reduction: maps each `(len, grain)` chunk to a
/// partial with `map`, then combines partials along a fixed pairwise tree
/// over chunk indices — adjacent pairs `(0,1), (2,3), …`, repeated until
/// one value remains. The combining shape depends only on `(len, grain)`,
/// **never** on thread count or completion order, so floating-point results
/// are reproducible. Returns `None` for `len == 0`.
pub fn parallel_reduce<T, M, R>(len: usize, grain: usize, map: M, reduce: R) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    if len == 0 {
        return None;
    }
    let grain = grain.max(1);
    let nchunks = chunk_count(len, grain);
    let mut partials = parallel_map(nchunks, 1, |i| {
        let start = i * grain;
        map(start..(start + grain).min(len))
    });
    while partials.len() > 1 {
        let mut next = Vec::with_capacity(partials.len().div_ceil(2));
        let mut it = partials.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(reduce(a, b)),
                None => next.push(a),
            }
        }
        partials = next;
    }
    partials.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parse_or_warn_accepts_valid_values_silently() {
        let (v, w) = parse_or_warn("t", "K", Some("7"), "int", "1", |s| s.parse().ok(), || 1u32);
        assert_eq!((v, w), (7, None));
    }

    #[test]
    fn parse_or_warn_missing_value_takes_fallback_without_warning() {
        let (v, w) = parse_or_warn("t", "K", None, "int", "1", |s| s.parse().ok(), || 1u32);
        assert_eq!((v, w), (1, None));
    }

    #[test]
    fn parse_or_warn_garbage_warns_and_falls_back() {
        let (v, w) =
            parse_or_warn("gist-x", "KNOB", Some("bogus"), "a|b", "a", |_| None::<u32>, || 9);
        assert_eq!(v, 9);
        let w = w.expect("garbage must warn");
        assert!(w.contains("gist-x") && w.contains("KNOB"), "names source+knob: {w}");
        assert!(w.contains("invalid") && w.contains("\"bogus\""), "names the spelling: {w}");
        assert!(w.contains("a|b") && w.contains("falling back to a"), "names the grammar: {w}");
    }

    #[test]
    fn resolve_env_threads_policy() {
        let default = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        assert_eq!(resolve_env_threads(Some(" 3 ")), (3, None));
        assert_eq!(resolve_env_threads(None), (default, None));
        for bad in ["0", "-1", "many", "", "2.5"] {
            let (n, w) = resolve_env_threads(Some(bad));
            assert_eq!(n, default, "garbage {bad:?} falls back");
            let w = w.expect("garbage must warn");
            assert!(w.contains("GIST_THREADS") && w.contains("invalid"), "{w}");
        }
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            parallel_for(1000, 7, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_matches_serial() {
        let serial: Vec<u64> = (0..500u64).map(|i| i * i + 1).collect();
        for threads in [1, 2, 5] {
            let par =
                with_threads(threads, || parallel_map(500, 13, |i| (i as u64) * (i as u64) + 1));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn chunks_mut_writes_disjoint_slices() {
        let mut data = vec![0usize; 101];
        with_threads(3, || {
            parallel_chunks_mut(&mut data, 10, |ci, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 10 + k;
                }
            });
        });
        let expect: Vec<usize> = (0..101).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn reduce_tree_is_thread_count_invariant_for_floats() {
        // Values chosen so that accumulation order changes the f32 sum:
        // a naive racing reduction would be flaky here.
        let vals: Vec<f32> =
            (0..4096).map(|i| if i % 3 == 0 { 1e8 } else { -3.3e7 + i as f32 }).collect();
        let sum_at = |threads: usize| {
            with_threads(threads, || {
                parallel_reduce(
                    vals.len(),
                    64,
                    |r| r.map(|i| vals[i]).fold(0.0f32, |a, b| a + b),
                    |a, b| a + b,
                )
                .unwrap()
            })
        };
        let s1 = sum_at(1);
        for threads in [2, 3, 8] {
            assert_eq!(s1.to_bits(), sum_at(threads).to_bits(), "threads={threads}");
        }
        // Sanity: the test has teeth — a different combining order would
        // have produced different bits.
        let reversed: f32 = {
            let partials: Vec<f32> = (0..4096 / 64)
                .map(|c| vals[c * 64..(c + 1) * 64].iter().fold(0.0f32, |a, &b| a + b))
                .collect();
            partials.iter().rev().fold(0.0f32, |a, &b| a + b)
        };
        assert_ne!(s1.to_bits(), reversed.to_bits(), "input must be order-sensitive");
    }

    #[test]
    fn reduce_matches_explicit_pairwise_tree() {
        let vals: Vec<f64> = (0..77).map(|i| (i as f64).sin() * 1e6).collect();
        let got = with_threads(4, || {
            parallel_reduce(77, 8, |r| r.map(|i| vals[i]).sum::<f64>(), |a, b| a + b).unwrap()
        });
        // Reference: same chunking, explicit tree.
        let mut level: Vec<f64> =
            (0..10).map(|c| vals[c * 8..(c * 8 + 8).min(77)].iter().sum::<f64>()).collect();
        while level.len() > 1 {
            level =
                level.chunks(2).map(|p| if p.len() == 2 { p[0] + p[1] } else { p[0] }).collect();
        }
        assert_eq!(got.to_bits(), level[0].to_bits());
    }

    #[test]
    fn nested_dispatch_degrades_to_serial() {
        let count = AtomicU64::new(0);
        with_threads(4, || {
            parallel_for(8, 1, |outer| {
                // Nested: must run inline without deadlock.
                parallel_for(8, 1, |inner| {
                    count.fetch_add((outer.start * 8 + inner.start) as u64, Ordering::Relaxed);
                });
            });
        });
        let expect: u64 = (0..64).sum();
        assert_eq!(count.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn panic_in_task_propagates() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_pool(&pool, || {
                parallel_for(64, 1, |r| {
                    if r.start == 17 {
                        panic!("task 17 exploded");
                    }
                });
            });
        }));
        let msg = result.expect_err("panic must propagate");
        let text = msg.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(text.contains("task 17"), "payload preserved: {text:?}");
        // Pool remains usable after a panic.
        with_pool(&pool, || parallel_for(8, 1, |_| {}));
    }

    #[test]
    fn single_thread_pool_spawns_no_workers() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.workers(), 0);
    }

    #[test]
    fn ambient_context_reaches_pool_workers() {
        assert_eq!(ambient(), 0);
        with_threads(4, || {
            with_ambient(7, || {
                let seen: Vec<u32> = parallel_map(64, 1, |_| ambient());
                assert!(seen.iter().all(|&v| v == 7), "workers saw {seen:?}");
                // Nested dispatch (inline on a worker) still sees the value.
                parallel_for(4, 1, |_| {
                    parallel_for(4, 1, |_| assert_eq!(ambient(), 7));
                });
            });
            // Restored after the scope, including on this thread.
            assert_eq!(ambient(), 0);
            let seen: Vec<u32> = parallel_map(64, 1, |_| ambient());
            assert!(seen.iter().all(|&v| v == 0), "override leaked: {seen:?}");
        });
    }

    #[test]
    fn zero_len_and_oversized_grain() {
        with_threads(3, || {
            parallel_for(0, 8, |_| panic!("must not run"));
            assert!(parallel_map(0, 8, |i| i).is_empty());
            assert_eq!(parallel_reduce(0, 8, |_| 1usize, |a, b| a + b), None);
            // grain > len: one chunk.
            let v = parallel_map(3, 1000, |i| i * 2);
            assert_eq!(v, vec![0, 2, 4]);
            // grain 0 is clamped to 1.
            let v = parallel_map(4, 0, |i| i);
            assert_eq!(v, vec![0, 1, 2, 3]);
        });
    }
}
