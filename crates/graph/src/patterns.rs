//! Detection of the layer pairs Gist's encodings target.
//!
//! Section III-A of the paper: convolutions are typically followed by ReLU,
//! and each Conv-ReLU group is followed either by another such group
//! (ReLU→Conv) or by a pooling layer (ReLU→Pool). A few Pool→Conv pairs are
//! also SSDC-eligible because pool outputs inherit ReLU sparsity.

use crate::class::is_stashed;
use crate::ir::{Graph, NodeId, OpKind};

/// Which encoding family a stashed feature map is eligible for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// ReLU output consumed only by max-pool layers — Binarize (lossless,
    /// 32x on the ReLU output, plus the pool Y→X map).
    ReluPool,
    /// ReLU output consumed by a convolution — SSDC (lossless, sparsity-
    /// dependent).
    ReluConv,
    /// Max-pool output consumed by a convolution whose sparsity is inherited
    /// from the preceding ReLU — SSDC.
    PoolConv,
    /// Any other stashed feature map — DPR (lossy) only.
    Other,
}

impl PairKind {
    /// Label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            PairKind::ReluPool => "ReLU-Pool",
            PairKind::ReluConv => "ReLU-Conv",
            PairKind::PoolConv => "Pool-Conv",
            PairKind::Other => "Other",
        }
    }
}

/// A stashed feature map together with its detected pair kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerPair {
    /// The producer node whose output feature map is stashed.
    pub producer: NodeId,
    /// Eligible encoding family.
    pub kind: PairKind,
}

/// Classifies the stashed output of `id`.
///
/// Only meaningful for nodes whose output is actually stashed; callers
/// normally iterate [`detect_pairs`].
pub fn classify(graph: &Graph, id: NodeId) -> PairKind {
    let node = graph.node(id);
    let consumers = graph.consumers(id);
    let any_conv = consumers.iter().any(|&c| matches!(graph.node(c).op, OpKind::Conv { .. }));
    match node.op {
        OpKind::Relu => {
            let all_pool = !consumers.is_empty()
                && consumers.iter().all(|&c| matches!(graph.node(c).op, OpKind::MaxPool(_)));
            if all_pool {
                PairKind::ReluPool
            } else if any_conv {
                PairKind::ReluConv
            } else {
                PairKind::Other
            }
        }
        OpKind::MaxPool(_) => {
            // Pool output sparsity is inherited only if the pool's own input
            // came from a ReLU.
            let from_relu = node
                .inputs
                .first()
                .map(|&i| matches!(graph.node(i).op, OpKind::Relu))
                .unwrap_or(false);
            if any_conv && from_relu {
                PairKind::PoolConv
            } else {
                PairKind::Other
            }
        }
        _ => PairKind::Other,
    }
}

/// Finds every stashed feature map in the graph and classifies it.
pub fn detect_pairs(graph: &Graph) -> Vec<LayerPair> {
    graph
        .nodes()
        .iter()
        .filter(|n| is_stashed(graph, n.id))
        .map(|n| LayerPair { producer: n.id, kind: classify(graph, n.id) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_tensor::ops::{conv::ConvParams, pool::PoolParams};
    use gist_tensor::Shape;

    #[test]
    fn vgg_style_chain_classification() {
        // conv-relu-conv-relu-pool-fc: first relu is ReluConv, second ReluPool.
        let mut g = Graph::new("v");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let c1 = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r1 = g.relu(c1, "r1");
        let c2 = g.conv(r1, 4, ConvParams::new(3, 1, 1), true, "c2");
        let r2 = g.relu(c2, "r2");
        let p = g.max_pool(r2, PoolParams::new(2, 2, 0), "p1");
        g.linear(p, 10, true, "fc");
        assert_eq!(classify(&g, r1), PairKind::ReluConv);
        assert_eq!(classify(&g, r2), PairKind::ReluPool);
        // pool feeds fc (not conv) -> Other.
        assert_eq!(classify(&g, p), PairKind::Other);
    }

    #[test]
    fn pool_feeding_conv_after_relu_is_poolconv() {
        let mut g = Graph::new("pc");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let c1 = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r1 = g.relu(c1, "r1");
        let p = g.max_pool(r1, PoolParams::new(2, 2, 0), "p1");
        let c2 = g.conv(p, 8, ConvParams::new(3, 1, 1), true, "c2");
        g.relu(c2, "r2");
        assert_eq!(classify(&g, p), PairKind::PoolConv);
        assert_eq!(classify(&g, r1), PairKind::ReluPool);
    }

    #[test]
    fn pool_without_relu_input_is_other() {
        let mut g = Graph::new("npc");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let p = g.max_pool(x, PoolParams::new(2, 2, 0), "p1");
        let c = g.conv(p, 4, ConvParams::new(3, 1, 1), true, "c1");
        g.relu(c, "r");
        assert_eq!(classify(&g, p), PairKind::Other);
    }

    #[test]
    fn relu_feeding_both_pool_and_conv_is_reluconv() {
        // Conv needs actual values, so Binarize cannot apply.
        let mut g = Graph::new("mix");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let c1 = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r = g.relu(c1, "r");
        g.max_pool(r, PoolParams::new(2, 2, 0), "p");
        g.conv(r, 4, ConvParams::new(3, 1, 1), true, "c2");
        assert_eq!(classify(&g, r), PairKind::ReluConv);
    }

    #[test]
    fn detect_pairs_only_reports_stashed_maps() {
        let mut g = Graph::new("d");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let c1 = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r1 = g.relu(c1, "r1");
        let p = g.max_pool(r1, PoolParams::new(2, 2, 0), "p1");
        g.linear(p, 10, true, "fc");
        let pairs = detect_pairs(&g);
        // stashed: input (conv needs it), r1 (relu+pool need it), p (fc needs it)
        // conv output c1 is immediate; fc output is immediate (no loss head).
        let producers: Vec<NodeId> = pairs.iter().map(|p| p.producer).collect();
        assert!(producers.contains(&x));
        assert!(producers.contains(&r1));
        assert!(producers.contains(&p));
        assert!(!producers.contains(&c1));
    }
}
