//! Lifetime intervals over the schedule.

/// A closed interval `[start, end]` of schedule steps during which a data
/// structure must be resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First step at which the structure is live.
    pub start: usize,
    /// Last step at which the structure is live (inclusive).
    pub end: usize,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(end >= start, "interval end {end} before start {start}");
        Interval { start, end }
    }

    /// Whether two intervals share any step. Structures with overlapping
    /// intervals can never share memory.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Number of steps covered.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty (they cover at least one step).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether a step falls inside the interval.
    pub fn contains(&self, step: usize) -> bool {
        (self.start..=self.end).contains(&step)
    }
}

/// A table of named lifetimes, convenient for debugging allocator decisions.
#[derive(Debug, Clone, Default)]
pub struct LivenessTable {
    entries: Vec<(String, Interval, usize)>,
}

impl LivenessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a structure's lifetime and size in bytes.
    pub fn record(&mut self, name: impl Into<String>, interval: Interval, bytes: usize) {
        self.entries.push((name.into(), interval, bytes));
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[(String, Interval, usize)] {
        &self.entries
    }

    /// Total bytes live at a given step.
    pub fn live_bytes_at(&self, step: usize) -> usize {
        self.entries.iter().filter(|(_, iv, _)| iv.contains(step)).map(|(_, _, b)| b).sum()
    }

    /// Peak of [`Self::live_bytes_at`] over all steps — the footprint a
    /// perfect dynamic allocator would achieve (Section V-H).
    pub fn peak_live_bytes(&self, num_steps: usize) -> usize {
        (0..num_steps).map(|s| self.live_bytes_at(s)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_and_inclusive() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 9);
        let c = Interval::new(6, 7);
        assert!(a.overlaps(&b) && b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn single_step_intervals() {
        let a = Interval::new(3, 3);
        assert_eq!(a.len(), 1);
        assert!(a.contains(3));
        assert!(!a.contains(2));
        assert!(a.overlaps(&Interval::new(3, 3)));
    }

    #[test]
    #[should_panic(expected = "interval end")]
    fn reversed_interval_panics() {
        Interval::new(4, 2);
    }

    #[test]
    fn peak_live_bytes_finds_maximum() {
        let mut t = LivenessTable::new();
        t.record("a", Interval::new(0, 2), 10);
        t.record("b", Interval::new(2, 4), 20);
        t.record("c", Interval::new(4, 6), 5);
        assert_eq!(t.live_bytes_at(2), 30);
        assert_eq!(t.peak_live_bytes(7), 30);
    }
}
