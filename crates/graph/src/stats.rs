//! Per-node compute and memory-traffic statistics.
//!
//! These feed the analytic GPU performance model in `gist-perf` (Figures 9,
//! 15, 16): each layer's execution time is estimated roofline-style from its
//! floating-point operations and bytes moved.

use crate::ir::{Graph, GraphError, NodeId, OpKind};
use gist_tensor::Shape;

/// Compute/traffic statistics for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Node these stats describe.
    pub id: NodeId,
    /// Forward-pass floating-point operations.
    pub fwd_flops: f64,
    /// Backward-pass floating-point operations.
    pub bwd_flops: f64,
    /// Forward-pass bytes read + written (activations and weights).
    pub fwd_bytes: f64,
    /// Backward-pass bytes read + written.
    pub bwd_bytes: f64,
}

/// Computes statistics for every node.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn node_stats(graph: &Graph) -> Result<Vec<NodeStats>, GraphError> {
    let shapes = graph.infer_shapes()?;
    let mut out = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let y: Shape = shapes[node.id.index()];
        let x: Option<Shape> = node.inputs.first().map(|&i| shapes[i.index()]);
        let in_bytes: f64 =
            node.inputs.iter().map(|&i| shapes[i.index()].bytes_fp32() as f64).sum();
        let out_bytes = y.bytes_fp32() as f64;
        let (fwd_flops, bwd_flops) = match &node.op {
            OpKind::Input(_) => (0.0, 0.0),
            OpKind::Conv { out_channels, params, .. } => {
                let x = x.expect("conv has input");
                let macs = (*out_channels as f64)
                    * (x.c() * params.kernel * params.kernel) as f64
                    * (y.h() * y.w() * y.n()) as f64;
                // backward: dX and dW each cost about one forward conv.
                (2.0 * macs, 4.0 * macs)
            }
            OpKind::Linear { out_features, .. } => {
                let x = x.expect("linear has input");
                let (n, f_in) = x.as_matrix();
                let macs = (n * f_in * out_features) as f64;
                (2.0 * macs, 4.0 * macs)
            }
            OpKind::Relu => (y.numel() as f64, y.numel() as f64),
            OpKind::MaxPool(p) | OpKind::AvgPool(p) => {
                let cmp = (p.window * p.window) as f64 * y.numel() as f64;
                (cmp, y.numel() as f64)
            }
            OpKind::BatchNorm => (6.0 * y.numel() as f64, 10.0 * y.numel() as f64),
            OpKind::Lrn(p) => {
                let win = p.size as f64;
                (3.0 * win * y.numel() as f64, 4.0 * win * y.numel() as f64)
            }
            OpKind::Dropout { .. } => (y.numel() as f64, y.numel() as f64),
            OpKind::Add => (y.numel() as f64, 0.0),
            OpKind::Concat => (0.0, 0.0),
            OpKind::SoftmaxLoss => (5.0 * y.numel() as f64, 2.0 * y.numel() as f64),
        };
        let weight_bytes =
            graph.weight_shape(node.id, &shapes).map(|w| w.bytes_fp32() as f64).unwrap_or(0.0);
        let fwd_bytes = in_bytes + out_bytes + weight_bytes;
        // backward reads stashes + dY, writes dX (+dW).
        let bwd_bytes = in_bytes + 2.0 * out_bytes + 2.0 * weight_bytes;
        out.push(NodeStats { id: node.id, fwd_flops, bwd_flops, fwd_bytes, bwd_bytes });
    }
    Ok(out)
}

/// Total forward+backward FLOPs of the whole graph.
pub fn total_flops(stats: &[NodeStats]) -> f64 {
    stats.iter().map(|s| s.fwd_flops + s.bwd_flops).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_tensor::ops::{conv::ConvParams, pool::PoolParams};

    #[test]
    fn conv_flops_formula() {
        let mut g = Graph::new("f");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        g.conv(x, 16, ConvParams::new(3, 1, 1), false, "c");
        let st = node_stats(&g).unwrap();
        // 2 * K*C*R*R*OH*OW*N = 2 * 16*3*9 * 64
        assert_eq!(st[1].fwd_flops, 2.0 * 16.0 * 27.0 * 64.0);
        assert_eq!(st[1].bwd_flops, 2.0 * st[1].fwd_flops);
    }

    #[test]
    fn linear_flops_formula() {
        let mut g = Graph::new("f");
        let x = g.input(Shape::nchw(4, 1, 1, 100));
        g.linear(x, 10, false, "fc");
        let st = node_stats(&g).unwrap();
        assert_eq!(st[1].fwd_flops, 2.0 * 4.0 * 100.0 * 10.0);
    }

    #[test]
    fn conv_layers_dominate_flops() {
        let mut g = Graph::new("d");
        let x = g.input(Shape::nchw(8, 3, 32, 32));
        let c = g.conv(x, 64, ConvParams::new(3, 1, 1), true, "c");
        let r = g.relu(c, "r");
        g.max_pool(r, PoolParams::new(2, 2, 0), "p");
        let st = node_stats(&g).unwrap();
        assert!(st[1].fwd_flops > 10.0 * st[2].fwd_flops);
        assert!(total_flops(&st) > st[1].fwd_flops);
    }

    #[test]
    fn bytes_are_positive_for_compute_nodes() {
        let mut g = Graph::new("b");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let c = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c");
        g.relu(c, "r");
        for s in node_stats(&g).unwrap().iter().skip(1) {
            assert!(s.fwd_bytes > 0.0 && s.bwd_bytes > 0.0);
        }
    }
}
