//! Graphviz DOT export of execution graphs, with nodes colored by the
//! stash classification — handy for inspecting what the Schedule Builder
//! will see.

use crate::class::is_stashed;
use crate::ir::Graph;

/// Renders the graph in Graphviz DOT syntax.
///
/// Stashed feature-map producers are drawn as filled boxes; immediately
/// consumed producers as plain ellipses.
pub fn to_dot(graph: &Graph) -> String {
    let mut s = String::new();
    s.push_str(&format!("digraph \"{}\" {{\n", graph.name()));
    s.push_str("  rankdir=TB;\n");
    for node in graph.nodes() {
        let shape = if is_stashed(graph, node.id) {
            "shape=box, style=filled, fillcolor=lightblue"
        } else {
            "shape=ellipse"
        };
        s.push_str(&format!(
            "  n{} [label=\"{}\\n({})\", {}];\n",
            node.id.index(),
            node.name,
            node.op.tag(),
            shape
        ));
    }
    for node in graph.nodes() {
        for input in &node.inputs {
            s.push_str(&format!("  n{} -> n{};\n", input.index(), node.id.index()));
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_tensor::ops::{conv::ConvParams, pool::PoolParams};
    use gist_tensor::Shape;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut g = Graph::new("t");
        let x = g.input(Shape::nchw(1, 3, 8, 8));
        let c = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r = g.relu(c, "r1");
        g.max_pool(r, PoolParams::new(2, 2, 0), "p1");
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n2 -> n3;"));
        assert!(dot.contains("(conv)"));
        // relu output is stashed -> filled box.
        assert!(dot.contains("r1\\n(relu)\", shape=box"));
        // conv output is immediate -> ellipse.
        assert!(dot.contains("c1\\n(conv)\", shape=ellipse"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_is_valid_for_every_paper_model() {
        for g in gist_models_like() {
            let dot = to_dot(&g);
            // Balanced braces, one edge line per input reference.
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
            let edges: usize = g.nodes().iter().map(|n| n.inputs.len()).sum();
            assert_eq!(dot.matches(" -> ").count(), edges);
        }
    }

    /// A couple of structurally interesting graphs without depending on
    /// gist-models (which would be a cyclic dev-dependency).
    fn gist_models_like() -> Vec<Graph> {
        let mut branchy = Graph::new("branchy");
        let x = branchy.input(Shape::nchw(1, 2, 8, 8));
        let a = branchy.conv(x, 2, ConvParams::new(1, 1, 0), false, "a");
        let b = branchy.conv(x, 2, ConvParams::new(3, 1, 1), false, "b");
        let cat = branchy.concat(&[a, b], "cat");
        branchy.relu(cat, "r");
        vec![branchy]
    }
}
