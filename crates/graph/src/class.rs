//! Classification of every training data structure.
//!
//! Reproduces the paper's Section II-A breakdown: weights, weight gradients,
//! **stashed feature maps** (generated in forward, used again in backward),
//! **immediately consumed** feature maps (generated and consumed within the
//! forward pass), gradient maps (generated and consumed within the backward
//! pass), and cuDNN-style workspace.

use crate::ir::{Graph, GraphError, NodeId, OpKind};
use crate::liveness::Interval;
use crate::sched::Schedule;
use gist_tensor::Shape;

/// The paper's data-structure taxonomy (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Learned parameters.
    Weight,
    /// Parameter gradients accumulated in the backward pass.
    WeightGrad,
    /// Feature maps stashed in the forward pass for backward use.
    StashedFmap,
    /// Feature maps consumed entirely within the forward pass.
    ImmediateFmap,
    /// Backward-pass gradients w.r.t. feature maps, consumed immediately.
    GradientMap,
    /// Per-layer scratch memory (cuDNN workspace analogue).
    Workspace,
}

impl DataClass {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            DataClass::Weight => "weights",
            DataClass::WeightGrad => "weight gradients",
            DataClass::StashedFmap => "stashed feature maps",
            DataClass::ImmediateFmap => "immediately consumed",
            DataClass::GradientMap => "gradient maps",
            DataClass::Workspace => "workspace",
        }
    }
}

/// What a data structure is, relative to the graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TensorRole {
    /// The output feature map of a node.
    FeatureMap(NodeId),
    /// Learned parameters of a node (weights + bias together).
    Weight(NodeId),
    /// Gradient of the parameters of a node.
    WeightGrad(NodeId),
    /// Gradient w.r.t. the output feature map of a node.
    GradientMap(NodeId),
    /// Scratch space for a node's forward (`backward == false`) or backward
    /// pass.
    Workspace {
        /// Owning node.
        node: NodeId,
        /// Whether this is the backward-pass scratch.
        backward: bool,
    },
    /// A Gist-encoded stash (created by the Schedule Builder in `gist-core`).
    Encoded {
        /// Node whose feature map was encoded.
        node: NodeId,
        /// Encoding tag, e.g. `binarize`, `ssdc`, `dpr16`, `poolmap`.
        encoding: &'static str,
    },
    /// A decode buffer holding the FP32 reconstruction for backward use.
    Decoded(NodeId),
}

/// One allocatable training data structure with its size and lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct DataStructure {
    /// Human-readable name, e.g. `conv1.y` or `relu3.enc.binarize`.
    pub name: String,
    /// What the structure is.
    pub role: TensorRole,
    /// Which footprint class it belongs to.
    pub class: DataClass,
    /// Size in bytes.
    pub bytes: usize,
    /// Lifetime over the schedule.
    pub interval: Interval,
}

/// How much scratch the convolution implementation needs.
///
/// The paper uses cuDNN's *memory-optimal* configuration as its baseline and
/// mentions the performance-optimal alternative trades workspace for speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkspaceMode {
    /// Tiled implicit-GEMM scratch: one output row of the im2col matrix.
    #[default]
    MemoryOptimal,
    /// Full im2col lowering buffer.
    PerformanceOptimal,
}

fn conv_workspace_bytes(
    mode: WorkspaceMode,
    in_shape: Shape,
    out_shape: Shape,
    kernel: usize,
) -> usize {
    let ckk = in_shape.c() * kernel * kernel;
    match mode {
        WorkspaceMode::MemoryOptimal => ckk * out_shape.w() * 4,
        WorkspaceMode::PerformanceOptimal => ckk * out_shape.h() * out_shape.w() * 4,
    }
}

/// Whether the output feature map of `id` must be stashed for the backward
/// pass under baseline (no Gist) semantics.
pub fn is_stashed(graph: &Graph, id: NodeId) -> bool {
    let node = graph.node(id);
    if node.op.needs_output_in_backward() {
        return true;
    }
    graph.consumers(id).iter().any(|&c| graph.node(c).op.needs_input_in_backward())
}

/// Builds the complete baseline inventory of data structures for one
/// minibatch of training.
///
/// # Errors
///
/// Propagates shape-inference failures.
pub fn baseline_inventory(
    graph: &Graph,
    workspace: WorkspaceMode,
) -> Result<Vec<DataStructure>, GraphError> {
    let shapes = graph.infer_shapes()?;
    let sched = Schedule::of(graph);
    let mut out = Vec::new();

    for node in graph.nodes() {
        let id = node.id;
        let shape = shapes[id.index()];
        let fwd = sched.forward_step(id);
        let consumers = graph.consumers(id);

        // --- Output feature map ---
        let stashed = is_stashed(graph, id);
        let interval = if stashed {
            let mut death = fwd;
            if node.op.needs_output_in_backward() {
                death = death.max(sched.backward_step(id));
            }
            for &c in &consumers {
                if graph.node(c).op.needs_input_in_backward() {
                    death = death.max(sched.backward_step(c));
                }
            }
            Interval::new(fwd, death)
        } else {
            let last_use = consumers.iter().map(|&c| sched.forward_step(c)).max().unwrap_or(fwd);
            Interval::new(fwd, last_use)
        };
        out.push(DataStructure {
            name: format!("{}.y", node.name),
            role: TensorRole::FeatureMap(id),
            class: if stashed { DataClass::StashedFmap } else { DataClass::ImmediateFmap },
            bytes: shape.bytes_fp32(),
            interval,
        });

        // --- Dropout keep mask (bit-packed auxiliary stash) ---
        if matches!(node.op, OpKind::Dropout { .. }) {
            out.push(DataStructure {
                name: format!("{}.mask", node.name),
                role: TensorRole::Encoded { node: id, encoding: "dropmask" },
                class: DataClass::StashedFmap,
                bytes: shape.numel().div_ceil(8),
                interval: Interval::new(fwd, sched.backward_step(id)),
            });
        }

        // --- Gradient map (dY) ---
        // Input images receive no gradient; every other node's dY is written
        // by its consumers' backward passes (or by the node itself for the
        // loss head) and read by the node's own backward pass.
        if !matches!(node.op, OpKind::Input(_)) {
            let own_bwd = sched.backward_step(id);
            let birth = consumers.iter().map(|&c| sched.backward_step(c)).min().unwrap_or(own_bwd);
            out.push(DataStructure {
                name: format!("{}.dy", node.name),
                role: TensorRole::GradientMap(id),
                class: DataClass::GradientMap,
                bytes: shape.bytes_fp32(),
                interval: Interval::new(birth.min(own_bwd), own_bwd),
            });
        }

        // --- Weights and weight gradients ---
        if let Some(ws) = graph.weight_shape(id, &shapes) {
            let bias_bytes = match &node.op {
                OpKind::Conv { out_channels, bias: true, .. } => out_channels * 4,
                OpKind::Linear { out_features, bias: true, .. } => out_features * 4,
                _ => 0,
            };
            let bytes = ws.bytes_fp32() + bias_bytes;
            out.push(DataStructure {
                name: format!("{}.w", node.name),
                role: TensorRole::Weight(id),
                class: DataClass::Weight,
                bytes,
                interval: Interval::new(0, sched.num_steps() - 1),
            });
            out.push(DataStructure {
                name: format!("{}.dw", node.name),
                role: TensorRole::WeightGrad(id),
                class: DataClass::WeightGrad,
                bytes,
                interval: Interval::new(sched.backward_step(id), sched.num_steps() - 1),
            });
        }

        // --- Workspace ---
        if let OpKind::Conv { params, .. } = &node.op {
            let in_shape = shapes[node.inputs[0].index()];
            let bytes = conv_workspace_bytes(workspace, in_shape, shape, params.kernel);
            if bytes > 0 {
                out.push(DataStructure {
                    name: format!("{}.ws.fwd", node.name),
                    role: TensorRole::Workspace { node: id, backward: false },
                    class: DataClass::Workspace,
                    bytes,
                    interval: Interval::new(fwd, fwd),
                });
                let b = sched.backward_step(id);
                out.push(DataStructure {
                    name: format!("{}.ws.bwd", node.name),
                    role: TensorRole::Workspace { node: id, backward: true },
                    class: DataClass::Workspace,
                    bytes,
                    interval: Interval::new(b, b),
                });
            }
        }
    }
    Ok(out)
}

/// Sums bytes per class over an inventory.
pub fn class_totals(inventory: &[DataStructure]) -> Vec<(DataClass, usize)> {
    let classes = [
        DataClass::Weight,
        DataClass::WeightGrad,
        DataClass::StashedFmap,
        DataClass::ImmediateFmap,
        DataClass::GradientMap,
        DataClass::Workspace,
    ];
    classes
        .iter()
        .map(|&c| (c, inventory.iter().filter(|d| d.class == c).map(|d| d.bytes).sum()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_tensor::ops::{conv::ConvParams, pool::PoolParams};

    fn tiny() -> Graph {
        let mut g = Graph::new("t");
        let x = g.input(Shape::nchw(2, 3, 8, 8));
        let c = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r = g.relu(c, "r1");
        let p = g.max_pool(r, PoolParams::new(2, 2, 0), "p1");
        let f = g.linear(p, 10, true, "fc");
        g.softmax_loss(f, "loss");
        g
    }

    fn find<'a>(inv: &'a [DataStructure], name: &str) -> &'a DataStructure {
        inv.iter().find(|d| d.name == name).unwrap_or_else(|| panic!("missing {name}"))
    }

    #[test]
    fn relu_output_is_stashed_conv_output_is_not() {
        let g = tiny();
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        // conv output feeds relu; relu does not need its input -> immediate...
        // except baseline maxpool stashes its own input, and relu's OUTPUT is
        // the pool's input. conv output itself is consumed by relu only.
        assert_eq!(find(&inv, "c1.y").class, DataClass::ImmediateFmap);
        assert_eq!(find(&inv, "r1.y").class, DataClass::StashedFmap);
        // input images are stashed: conv1 backward needs them for dW.
        assert_eq!(find(&inv, "input.y").class, DataClass::StashedFmap);
        // pool output feeds fc which needs its input.
        assert_eq!(find(&inv, "p1.y").class, DataClass::StashedFmap);
    }

    #[test]
    fn stashed_lifetime_spans_to_backward_use() {
        let g = tiny();
        let sched = Schedule::of(&g);
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        let relu_id = g.nodes()[2].id;
        let pool_id = g.nodes()[3].id;
        let r = find(&inv, "r1.y");
        // relu output lives until max(relu's own backward, pool's backward);
        // relu backward is later (relu is earlier in the graph).
        assert_eq!(r.interval.start, sched.forward_step(relu_id));
        assert_eq!(r.interval.end, sched.backward_step(relu_id));
        assert!(sched.backward_step(relu_id) > sched.backward_step(pool_id));
    }

    #[test]
    fn immediate_fmap_dies_after_forward_consumer() {
        let g = tiny();
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        let c = find(&inv, "c1.y");
        assert_eq!(c.interval, Interval::new(1, 2)); // born at conv, dies at relu
    }

    #[test]
    fn gradient_maps_live_within_backward() {
        let g = tiny();
        let sched = Schedule::of(&g);
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        let dy = find(&inv, "r1.dy");
        let relu_id = g.nodes()[2].id;
        let pool_id = g.nodes()[3].id;
        // born when pool's backward writes it, dies when relu's backward reads it
        assert_eq!(
            dy.interval,
            Interval::new(sched.backward_step(pool_id), sched.backward_step(relu_id))
        );
    }

    #[test]
    fn weights_live_forever_grads_from_backward() {
        let g = tiny();
        let sched = Schedule::of(&g);
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        let w = find(&inv, "c1.w");
        assert_eq!(w.interval, Interval::new(0, sched.num_steps() - 1));
        // conv weight: 4*3*3*3 floats + 4 bias floats
        assert_eq!(w.bytes, (4 * 3 * 3 * 3 + 4) * 4);
        let dw = find(&inv, "c1.dw");
        assert_eq!(dw.interval.start, sched.backward_step(g.nodes()[1].id));
    }

    #[test]
    fn class_totals_cover_all_structures() {
        let g = tiny();
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        let totals = class_totals(&inv);
        let sum: usize = totals.iter().map(|(_, b)| b).sum();
        assert_eq!(sum, inv.iter().map(|d| d.bytes).sum::<usize>());
        let stashed = totals.iter().find(|(c, _)| *c == DataClass::StashedFmap).unwrap().1;
        assert!(stashed > 0);
    }

    #[test]
    fn performance_optimal_workspace_is_larger() {
        let g = tiny();
        let mem = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        let perf = baseline_inventory(&g, WorkspaceMode::PerformanceOptimal).unwrap();
        let ws = |inv: &[DataStructure]| -> usize {
            inv.iter().filter(|d| d.class == DataClass::Workspace).map(|d| d.bytes).sum()
        };
        assert!(ws(&perf) > ws(&mem));
    }

    #[test]
    fn avgpool_output_not_stashed_when_feeding_loss_free_ops() {
        // avgpool -> add path: neither needs input in backward, avgpool
        // doesn't need its own output.
        let mut g = Graph::new("a");
        let x = g.input(Shape::nchw(1, 2, 4, 4));
        let r = g.relu(x, "r");
        let p = g.avg_pool(r, PoolParams::new(2, 2, 0), "ap");
        let p2 = g.avg_pool(r, PoolParams::new(2, 2, 0), "ap2");
        g.add(p, p2, "sum");
        let inv = baseline_inventory(&g, WorkspaceMode::MemoryOptimal).unwrap();
        assert_eq!(find(&inv, "ap.y").class, DataClass::ImmediateFmap);
        // relu output: avgpool consumers don't need it, relu needs own output
        assert_eq!(find(&inv, "r.y").class, DataClass::StashedFmap);
    }
}
