#![warn(missing_docs)]

//! # gist-graph
//!
//! The execution-graph substrate: a CNTK-like directed graph of layer
//! operations with static shape inference, a forward+backward schedule,
//! classification of every training data structure (weights, weight
//! gradients, **stashed feature maps**, **immediately consumed** feature
//! maps, gradient maps, workspace), liveness analysis over the schedule, and
//! detection of the layer pairs Gist's encodings target (ReLU→Pool,
//! ReLU→Conv, Pool→Conv).
//!
//! The paper's memory results are all functions of (shapes × lifetimes ×
//! allocator policy); this crate computes the first two exactly.
//!
//! ```
//! use gist_graph::Graph;
//! use gist_tensor::Shape;
//! use gist_tensor::ops::{conv::ConvParams, pool::PoolParams};
//!
//! let mut g = Graph::new("tiny");
//! let x = g.input(Shape::nchw(64, 3, 32, 32));
//! let c = g.conv(x, 16, ConvParams::new(3, 1, 1), true, "conv1");
//! let r = g.relu(c, "relu1");
//! let p = g.max_pool(r, PoolParams::new(2, 2, 0), "pool1");
//! let f = g.linear(p, 10, true, "fc");
//! let _loss = g.softmax_loss(f, "loss");
//! let shapes = g.infer_shapes().unwrap();
//! assert_eq!(shapes[p.index()].c(), 16);
//! ```

pub mod class;
pub mod dot;
pub mod ir;
pub mod liveness;
pub mod patterns;
pub mod sched;
pub mod stats;

pub use class::{DataClass, DataStructure, TensorRole};
pub use ir::{Graph, GraphError, Node, NodeId, OpKind};
pub use liveness::{Interval, LivenessTable};
pub use patterns::{LayerPair, PairKind};
pub use sched::Schedule;
