//! Graph intermediate representation and builder.

use gist_tensor::ops::conv::ConvParams;
use gist_tensor::ops::lrn::LrnParams;
use gist_tensor::ops::pool::PoolParams;
use gist_tensor::Shape;
use std::fmt;

/// Identifier of a node in a [`Graph`]. Node ids double as the id of the
/// feature map the node produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Creates a node id from a raw index. Only meaningful for ids obtained
    /// from (or about to be validated against) a specific [`Graph`].
    pub fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The underlying index into [`Graph::nodes`].
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The operation a node performs.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// Network input (images); carries its full NCHW shape.
    Input(Shape),
    /// 2-D convolution with `out_channels` filters.
    Conv {
        /// Number of output channels (filters).
        out_channels: usize,
        /// Kernel/stride/pad geometry.
        params: ConvParams,
        /// Whether a bias vector is learned.
        bias: bool,
    },
    /// Rectified linear activation.
    Relu,
    /// Max pooling.
    MaxPool(PoolParams),
    /// Average pooling.
    AvgPool(PoolParams),
    /// Fully-connected layer producing `out_features` per image.
    Linear {
        /// Output feature count.
        out_features: usize,
        /// Whether a bias vector is learned.
        bias: bool,
    },
    /// Spatial batch normalization (per-channel scale and shift).
    BatchNorm,
    /// Cross-channel Local Response Normalization (original AlexNet/NiN).
    Lrn(LrnParams),
    /// Inverted dropout with the given drop probability; the keep mask is
    /// stashed (bit-packed) for the backward pass.
    Dropout {
        /// Probability of dropping each element.
        p: f32,
    },
    /// Elementwise residual addition of exactly two inputs.
    Add,
    /// Channel-wise concatenation of two or more inputs.
    Concat,
    /// Softmax + cross-entropy loss against labels supplied at runtime.
    SoftmaxLoss,
}

impl OpKind {
    /// Whether this op's backward pass reads the op's stashed *input*
    /// feature map (the `X` of Figure 4 in the paper).
    pub fn needs_input_in_backward(&self) -> bool {
        matches!(
            self,
            OpKind::Conv { .. }
                | OpKind::Linear { .. }
                | OpKind::BatchNorm
                | OpKind::Lrn(_)
                // Baseline CNTK max-pool stashes both X and Y to locate the
                // window maxima (Section IV-A).
                | OpKind::MaxPool(_)
                | OpKind::SoftmaxLoss
        )
    }

    /// Whether this op's backward pass reads the op's stashed *output*
    /// feature map (the `Y` of Figure 4).
    pub fn needs_output_in_backward(&self) -> bool {
        matches!(self, OpKind::Relu | OpKind::MaxPool(_))
    }

    /// Whether the op owns learned parameters.
    pub fn has_weights(&self) -> bool {
        matches!(self, OpKind::Conv { .. } | OpKind::Linear { .. } | OpKind::BatchNorm)
    }

    /// Short lowercase tag used in display output.
    pub fn tag(&self) -> &'static str {
        match self {
            OpKind::Input(_) => "input",
            OpKind::Conv { .. } => "conv",
            OpKind::Relu => "relu",
            OpKind::MaxPool(_) => "maxpool",
            OpKind::AvgPool(_) => "avgpool",
            OpKind::Linear { .. } => "linear",
            OpKind::BatchNorm => "batchnorm",
            OpKind::Lrn(_) => "lrn",
            OpKind::Dropout { .. } => "dropout",
            OpKind::Add => "add",
            OpKind::Concat => "concat",
            OpKind::SoftmaxLoss => "softmaxloss",
        }
    }
}

/// A single operation in the execution graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Human-readable layer name (e.g., `conv1_1`).
    pub name: String,
    /// The operation performed.
    pub op: OpKind,
    /// Producer nodes whose outputs this node consumes.
    pub inputs: Vec<NodeId>,
}

/// Errors from graph construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node references an input id that does not exist (or is not older
    /// than itself).
    InvalidInput {
        /// Offending node.
        node: String,
        /// The bad reference.
        input: usize,
    },
    /// Shape inference failed at a node.
    ShapeInference {
        /// Node where inference failed.
        node: String,
        /// Explanation.
        reason: String,
    },
    /// The graph has no nodes.
    Empty,
    /// A node has the wrong number of inputs for its op.
    Arity {
        /// Offending node name.
        node: String,
        /// Inputs the op requires (described).
        expected: &'static str,
        /// Inputs actually wired.
        actual: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidInput { node, input } => {
                write!(f, "node {node} references invalid input n{input}")
            }
            GraphError::ShapeInference { node, reason } => {
                write!(f, "shape inference failed at {node}: {reason}")
            }
            GraphError::Empty => write!(f, "graph is empty"),
            GraphError::Arity { node, expected, actual } => {
                write!(f, "node {node} expects {expected} inputs, has {actual}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A CNTK-style static execution graph.
///
/// Nodes are appended in topological order by construction: every builder
/// method only accepts ids of already-existing nodes, so `nodes[i].inputs`
/// always reference indices `< i`.
#[derive(Debug, Clone)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph with a model name.
    pub fn new(name: impl Into<String>) -> Self {
        Graph { name: name.into(), nodes: Vec::new() }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Ids of the nodes that consume `id`'s output.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.inputs.contains(&id)).map(|n| n.id).collect()
    }

    fn push(&mut self, op: OpKind, inputs: Vec<NodeId>, name: impl Into<String>) -> NodeId {
        for &i in &inputs {
            assert!(i.0 < self.nodes.len(), "input {i} must already exist");
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, name: name.into(), op, inputs });
        id
    }

    /// Adds a network input of the given NCHW shape.
    pub fn input(&mut self, shape: Shape) -> NodeId {
        self.push(OpKind::Input(shape), vec![], "input")
    }

    /// Adds a convolution layer.
    pub fn conv(
        &mut self,
        x: NodeId,
        out_channels: usize,
        params: ConvParams,
        bias: bool,
        name: impl Into<String>,
    ) -> NodeId {
        self.push(OpKind::Conv { out_channels, params, bias }, vec![x], name)
    }

    /// Adds a ReLU activation.
    pub fn relu(&mut self, x: NodeId, name: impl Into<String>) -> NodeId {
        self.push(OpKind::Relu, vec![x], name)
    }

    /// Adds a max-pool layer.
    pub fn max_pool(&mut self, x: NodeId, params: PoolParams, name: impl Into<String>) -> NodeId {
        self.push(OpKind::MaxPool(params), vec![x], name)
    }

    /// Adds an average-pool layer.
    pub fn avg_pool(&mut self, x: NodeId, params: PoolParams, name: impl Into<String>) -> NodeId {
        self.push(OpKind::AvgPool(params), vec![x], name)
    }

    /// Adds a fully-connected layer.
    pub fn linear(
        &mut self,
        x: NodeId,
        out_features: usize,
        bias: bool,
        name: impl Into<String>,
    ) -> NodeId {
        self.push(OpKind::Linear { out_features, bias }, vec![x], name)
    }

    /// Adds a batch-normalization layer.
    pub fn batch_norm(&mut self, x: NodeId, name: impl Into<String>) -> NodeId {
        self.push(OpKind::BatchNorm, vec![x], name)
    }

    /// Adds a cross-channel LRN layer.
    pub fn lrn(&mut self, x: NodeId, params: LrnParams, name: impl Into<String>) -> NodeId {
        self.push(OpKind::Lrn(params), vec![x], name)
    }

    /// Adds an inverted-dropout layer with drop probability `p`.
    pub fn dropout(&mut self, x: NodeId, p: f32, name: impl Into<String>) -> NodeId {
        self.push(OpKind::Dropout { p }, vec![x], name)
    }

    /// Adds a residual addition of two equal-shaped inputs.
    pub fn add(&mut self, a: NodeId, b: NodeId, name: impl Into<String>) -> NodeId {
        self.push(OpKind::Add, vec![a, b], name)
    }

    /// Adds a channel concatenation.
    pub fn concat(&mut self, inputs: &[NodeId], name: impl Into<String>) -> NodeId {
        self.push(OpKind::Concat, inputs.to_vec(), name)
    }

    /// Adds the softmax + cross-entropy loss head.
    pub fn softmax_loss(&mut self, x: NodeId, name: impl Into<String>) -> NodeId {
        self.push(OpKind::SoftmaxLoss, vec![x], name)
    }

    /// Structural validation: every op has the arity it requires, and the
    /// graph has at least one input node.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] or [`GraphError::Arity`] on the first
    /// violation found.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let arity_err = |node: &Node, expected: &'static str| GraphError::Arity {
            node: node.name.clone(),
            expected,
            actual: node.inputs.len(),
        };
        for node in &self.nodes {
            let n = node.inputs.len();
            match &node.op {
                OpKind::Input(_) => {
                    if n != 0 {
                        return Err(arity_err(node, "zero"));
                    }
                }
                OpKind::Add => {
                    if n != 2 {
                        return Err(arity_err(node, "exactly two"));
                    }
                }
                OpKind::Concat => {
                    if n < 2 {
                        return Err(arity_err(node, "two or more"));
                    }
                }
                _ => {
                    if n != 1 {
                        return Err(arity_err(node, "exactly one"));
                    }
                }
            }
        }
        if !self.nodes.iter().any(|nd| matches!(nd.op, OpKind::Input(_))) {
            return Err(GraphError::Empty);
        }
        Ok(())
    }

    /// Infers the output shape of every node, indexed by node id.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ShapeInference`] if any node's inputs are
    /// incompatible with its op, or [`GraphError::Empty`] for an empty graph.
    pub fn infer_shapes(&self) -> Result<Vec<Shape>, GraphError> {
        if self.nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let err =
                |reason: String| GraphError::ShapeInference { node: node.name.clone(), reason };
            let input_shape = |i: usize| -> Shape { shapes[node.inputs[i].0] };
            let s = match &node.op {
                OpKind::Input(s) => *s,
                OpKind::Conv { out_channels, params, .. } => {
                    let x = input_shape(0);
                    if x.h() + 2 * params.pad < params.kernel
                        || x.w() + 2 * params.pad < params.kernel
                    {
                        return Err(err(format!("kernel {} too large for {x}", params.kernel)));
                    }
                    params.out_shape(x, *out_channels)
                }
                OpKind::Relu | OpKind::BatchNorm | OpKind::Lrn(_) | OpKind::Dropout { .. } => {
                    input_shape(0)
                }
                OpKind::MaxPool(p) | OpKind::AvgPool(p) => {
                    let x = input_shape(0);
                    if x.h() + 2 * p.pad < p.window || x.w() + 2 * p.pad < p.window {
                        return Err(err(format!("window {} too large for {x}", p.window)));
                    }
                    p.out_shape(x)
                }
                OpKind::Linear { out_features, .. } => {
                    let (n, _) = input_shape(0).as_matrix();
                    Shape::matrix(n, *out_features)
                }
                OpKind::Add => {
                    let (a, b) = (input_shape(0), input_shape(1));
                    if a != b {
                        return Err(err(format!("add of {a} and {b}")));
                    }
                    a
                }
                OpKind::Concat => {
                    let first = input_shape(0);
                    let mut c = 0;
                    for (i, _) in node.inputs.iter().enumerate() {
                        let s = input_shape(i);
                        if (s.n(), s.h(), s.w()) != (first.n(), first.h(), first.w()) {
                            return Err(err(format!("concat of {s} with {first}")));
                        }
                        c += s.c();
                    }
                    Shape::nchw(first.n(), c, first.h(), first.w())
                }
                OpKind::SoftmaxLoss => {
                    let (n, k) = input_shape(0).as_matrix();
                    Shape::matrix(n, k)
                }
            };
            shapes.push(s);
        }
        Ok(shapes)
    }

    /// Shape of the learned weight tensor of a node, if it has one.
    ///
    /// For conv: `[K, C, R, R]`; linear: `[F_out, F_in]`; batch-norm: the
    /// gamma/beta pair reported as `[2, C]`.
    pub fn weight_shape(&self, id: NodeId, shapes: &[Shape]) -> Option<Shape> {
        let node = &self.nodes[id.0];
        match &node.op {
            OpKind::Conv { out_channels, params, .. } => {
                let x = shapes[node.inputs[0].0];
                Some(Shape::nchw(*out_channels, x.c(), params.kernel, params.kernel))
            }
            OpKind::Linear { out_features, .. } => {
                let (_, f_in) = shapes[node.inputs[0].0].as_matrix();
                Some(Shape::matrix(*out_features, f_in))
            }
            OpKind::BatchNorm => {
                let x = shapes[node.inputs[0].0];
                Some(Shape::matrix(2, x.c()))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut g = Graph::new("t");
        let x = g.input(Shape::nchw(2, 3, 8, 8));
        let c = g.conv(x, 4, ConvParams::new(3, 1, 1), true, "c1");
        let r = g.relu(c, "r1");
        let p = g.max_pool(r, PoolParams::new(2, 2, 0), "p1");
        let f = g.linear(p, 10, true, "fc");
        g.softmax_loss(f, "loss");
        g
    }

    #[test]
    fn builder_creates_topological_order() {
        let g = tiny();
        assert_eq!(g.len(), 6);
        for n in g.nodes() {
            for i in &n.inputs {
                assert!(i.index() < n.id.index());
            }
        }
    }

    #[test]
    fn shape_inference_through_the_stack() {
        let g = tiny();
        let s = g.infer_shapes().unwrap();
        assert_eq!(s[1], Shape::nchw(2, 4, 8, 8)); // conv
        assert_eq!(s[2], Shape::nchw(2, 4, 8, 8)); // relu
        assert_eq!(s[3], Shape::nchw(2, 4, 4, 4)); // pool
        assert_eq!(s[4], Shape::matrix(2, 10)); // fc
    }

    #[test]
    fn consumers_finds_forward_edges() {
        let g = tiny();
        assert_eq!(g.consumers(NodeId(2)), vec![NodeId(3)]);
        assert!(g.consumers(NodeId(5)).is_empty());
    }

    #[test]
    fn weight_shapes() {
        let g = tiny();
        let s = g.infer_shapes().unwrap();
        assert_eq!(g.weight_shape(NodeId(1), &s), Some(Shape::nchw(4, 3, 3, 3)));
        assert_eq!(g.weight_shape(NodeId(4), &s), Some(Shape::matrix(10, 4 * 4 * 4)));
        assert_eq!(g.weight_shape(NodeId(2), &s), None);
    }

    #[test]
    fn add_requires_equal_shapes() {
        let mut g = Graph::new("bad");
        let x = g.input(Shape::nchw(1, 2, 4, 4));
        let y = g.input(Shape::nchw(1, 3, 4, 4));
        g.add(x, y, "sum");
        assert!(matches!(g.infer_shapes(), Err(GraphError::ShapeInference { .. })));
    }

    #[test]
    fn concat_sums_channels() {
        let mut g = Graph::new("cc");
        let a = g.input(Shape::nchw(1, 2, 4, 4));
        let b = g.input(Shape::nchw(1, 5, 4, 4));
        let c = g.concat(&[a, b], "cat");
        let s = g.infer_shapes().unwrap();
        assert_eq!(s[c.index()], Shape::nchw(1, 7, 4, 4));
    }

    #[test]
    fn backward_needs_match_the_paper_figure4() {
        // Figure 4: conv needs X; relu needs Y; baseline maxpool needs both.
        assert!(OpKind::Conv { out_channels: 1, params: ConvParams::new(1, 1, 0), bias: false }
            .needs_input_in_backward());
        assert!(!OpKind::Relu.needs_input_in_backward());
        assert!(OpKind::Relu.needs_output_in_backward());
        let mp = OpKind::MaxPool(PoolParams::new(2, 2, 0));
        assert!(mp.needs_input_in_backward() && mp.needs_output_in_backward());
        let ap = OpKind::AvgPool(PoolParams::new(2, 2, 0));
        assert!(!ap.needs_input_in_backward() && !ap.needs_output_in_backward());
    }

    #[test]
    fn empty_graph_is_an_error() {
        assert_eq!(Graph::new("e").infer_shapes().unwrap_err(), GraphError::Empty);
        assert_eq!(Graph::new("e").validate().unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn validate_accepts_wellformed_and_rejects_bad_arity() {
        assert!(tiny().validate().is_ok());
        // Concat with a single input is malformed.
        let mut g = Graph::new("bad");
        let x = g.input(Shape::nchw(1, 1, 2, 2));
        g.concat(&[x], "cat1");
        assert!(matches!(g.validate(), Err(GraphError::Arity { .. })));
    }
}
