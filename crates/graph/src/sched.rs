//! The forward+backward execution timeline.
//!
//! A minibatch executes every node once forward (steps `0..n`) and once
//! backward in reverse order (steps `n..2n`). Node `i` (topological position
//! `t`) runs forward at step `t` and backward at step `2n - 1 - t` — the
//! temporal structure behind Figure 2 of the paper: the deeper a layer, the
//! longer the gap between its feature map's two uses.

use crate::ir::{Graph, NodeId};

/// The static schedule of one minibatch.
#[derive(Debug, Clone)]
pub struct Schedule {
    num_nodes: usize,
    waves: Vec<Vec<NodeId>>,
}

impl Schedule {
    /// Builds the schedule for a graph.
    pub fn of(graph: &Graph) -> Self {
        // Wavefront levels: level(n) = 1 + max(level of n's inputs), with
        // sources at level 0. Two nodes in the same wave can never depend
        // on each other (any dependency path strictly increases the level),
        // so a wave's nodes may execute concurrently. Within a wave, ids
        // are ascending — the deterministic merge order the executor uses.
        let mut level = vec![0usize; graph.len()];
        let mut waves: Vec<Vec<NodeId>> = Vec::new();
        for node in graph.nodes() {
            let l = node.inputs.iter().map(|i| level[i.index()] + 1).max().unwrap_or(0);
            level[node.id.index()] = l;
            if waves.len() <= l {
                waves.resize(l + 1, Vec::new());
            }
            waves[l].push(node.id);
        }
        Schedule { num_nodes: graph.len(), waves }
    }

    /// The forward wavefronts: each wave lists mutually-independent node
    /// ids in ascending order. Executing waves in order (and the nodes of
    /// a wave in any order) respects every data dependency. The backward
    /// pass walks the same waves in reverse.
    pub fn waves(&self) -> &[Vec<NodeId>] {
        &self.waves
    }

    /// Number of nodes scheduled.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Total number of steps (forward + backward).
    pub fn num_steps(&self) -> usize {
        2 * self.num_nodes
    }

    /// Step at which a node's forward pass runs.
    pub fn forward_step(&self, id: NodeId) -> usize {
        id.index()
    }

    /// Step at which a node's backward pass runs.
    pub fn backward_step(&self, id: NodeId) -> usize {
        2 * self.num_nodes - 1 - id.index()
    }

    /// The temporal gap (in steps) between a node's forward and backward
    /// execution — the window during which Gist keeps the encoded form.
    pub fn stash_gap(&self, id: NodeId) -> usize {
        self.backward_step(id) - self.forward_step(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_tensor::Shape;

    #[test]
    fn forward_then_mirrored_backward() {
        let mut g = Graph::new("s");
        let a = g.input(Shape::vector(1));
        let b = g.relu(a, "r");
        let c = g.relu(b, "r2");
        let s = Schedule::of(&g);
        assert_eq!(s.num_steps(), 6);
        assert_eq!(s.forward_step(a), 0);
        assert_eq!(s.forward_step(c), 2);
        assert_eq!(s.backward_step(c), 3);
        assert_eq!(s.backward_step(a), 5);
    }

    #[test]
    fn waves_respect_dependencies_and_group_independent_nodes() {
        // Diamond: input -> (r1, r2) -> add; r1 and r2 share a wave.
        let mut g = Graph::new("d");
        let a = g.input(Shape::nchw(1, 1, 2, 2));
        let r1 = g.relu(a, "r1");
        let r2 = g.relu(a, "r2");
        let add = g.add(r1, r2, "add");
        let s = Schedule::of(&g);
        assert_eq!(s.waves(), &[vec![a], vec![r1, r2], vec![add]]);
    }

    #[test]
    fn chain_waves_are_singletons() {
        let mut g = Graph::new("c");
        let mut prev = g.input(Shape::vector(4));
        for i in 0..5 {
            prev = g.relu(prev, format!("r{i}"));
        }
        let s = Schedule::of(&g);
        assert_eq!(s.waves().len(), 6);
        assert!(s.waves().iter().all(|w| w.len() == 1));
    }

    #[test]
    fn earlier_layers_have_longer_stash_gaps() {
        let mut g = Graph::new("s");
        let mut prev = g.input(Shape::vector(1));
        for i in 0..10 {
            prev = g.relu(prev, format!("r{i}"));
        }
        let s = Schedule::of(&g);
        let gaps: Vec<usize> = g.nodes().iter().map(|n| s.stash_gap(n.id)).collect();
        for w in gaps.windows(2) {
            assert!(w[0] > w[1], "gaps strictly decrease with depth");
        }
    }
}
